"""Protection-interval maps: the VMA structure for one reservation.

Linux represents a process address space as a tree of VMAs, each a
contiguous range with uniform protection flags.  ``mprotect`` on a
sub-range *splits* VMAs at the boundaries, changes the flags, and then
*merges* adjacent VMAs whose flags became equal.  The number of splits
and merges feeds the cost model: the work happens under the write side
of ``mmap_lock``, so bigger VMA churn means longer exclusive holds.

:class:`ProtectionMap` implements that structure for a single
reservation (one Wasm linear-memory arena) as a sorted list of
half-open intervals.  It is exact — the same sequence of ``mprotect``
calls yields the same interval structure the kernel would hold — and it
reports the split/merge counts of every operation.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass


class Prot(enum.IntFlag):
    """Page protection flags (subset of PROT_*)."""

    NONE = 0
    READ = 1
    WRITE = 2
    RW = READ | WRITE


@dataclass
class _Interval:
    start: int
    end: int
    prot: Prot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.start:#x},{self.end:#x}):{self.prot.name}"


@dataclass(frozen=True)
class ProtectOutcome:
    """What an mprotect-style operation did to the interval structure."""

    splits: int
    merges: int
    changed_bytes: int


class VmaError(ValueError):
    """Raised for invalid protection-map operations."""


class ProtectionMap:
    """Sorted, merged protection intervals covering ``[0, size)``."""

    def __init__(self, size: int, initial: Prot = Prot.NONE) -> None:
        if size <= 0:
            raise VmaError(f"protection map size must be positive, got {size}")
        self.size = size
        self._intervals: list[_Interval] = [_Interval(0, size, initial)]

    # -- queries ---------------------------------------------------------
    @property
    def interval_count(self) -> int:
        return len(self._intervals)

    def intervals(self) -> list[tuple[int, int, Prot]]:
        return [(iv.start, iv.end, iv.prot) for iv in self._intervals]

    def prot_at(self, offset: int) -> Prot:
        if not 0 <= offset < self.size:
            raise VmaError(f"offset {offset:#x} outside map of size {self.size:#x}")
        index = bisect_right(self._starts(), offset) - 1
        return self._intervals[index].prot

    def is_accessible(self, offset: int, write: bool) -> bool:
        prot = self.prot_at(offset)
        needed = Prot.WRITE if write else Prot.READ
        return bool(prot & needed)

    # -- mutation ----------------------------------------------------------
    def protect(self, start: int, end: int, prot: Prot) -> ProtectOutcome:
        """Set protection on ``[start, end)``; returns split/merge counts."""
        if not 0 <= start < end <= self.size:
            raise VmaError(
                f"bad protect range [{start:#x},{end:#x}) for size {self.size:#x}"
            )
        splits = 0
        changed = 0

        # Split at the boundaries so [start, end) aligns with intervals.
        splits += self._split_at(start)
        splits += self._split_at(end)

        for iv in self._intervals:
            if iv.start >= end or iv.end <= start:
                continue
            if iv.prot != prot:
                changed += iv.end - iv.start
                iv.prot = prot

        merges = self._merge_all()
        return ProtectOutcome(splits=splits, merges=merges, changed_bytes=changed)

    # -- internals ---------------------------------------------------------
    def _starts(self) -> list[int]:
        return [iv.start for iv in self._intervals]

    def _split_at(self, offset: int) -> int:
        if offset in (0, self.size):
            return 0
        index = bisect_right(self._starts(), offset) - 1
        iv = self._intervals[index]
        if iv.start == offset:
            return 0
        self._intervals.insert(index + 1, _Interval(offset, iv.end, iv.prot))
        iv.end = offset
        return 1

    def _merge_all(self) -> int:
        merged: list[_Interval] = []
        merges = 0
        for iv in self._intervals:
            if merged and merged[-1].prot == iv.prot and merged[-1].end == iv.start:
                merged[-1].end = iv.end
                merges += 1
            else:
                merged.append(iv)
        self._intervals = merged
        return merges
