"""``MemAvailable`` model with transparent-huge-page granularity.

The paper measures memory usage as the gap between total and "available"
memory in ``/proc/meminfo`` (§4.3) and observes that PolyBench appears
to use more memory on x86-64 than on Armv8 because the kernel backs the
Wasm reservations with huge pages — up to 1 GiB on x86-64 versus 2 MiB
on the ThunderX2 — which are charged out of the available pool at huge
page granularity (even though they are reclaimable by splitting).

We model that as a per-arena round-up: an arena with any populated pages
is charged ``ceil(populated_bytes / granularity) * granularity``, with
the ISA-specific granularity from
:data:`repro.oskernel.layout.THP_GRANULARITY`.
"""

from __future__ import annotations

from typing import Iterable

from repro.oskernel.kernel import KernelProcess
from repro.oskernel.layout import THP_GRANULARITY


class MemInfoModel:
    """Computes apparent memory usage and time-averages it."""

    def __init__(self, isa: str) -> None:
        if isa not in THP_GRANULARITY:
            raise ValueError(f"unknown ISA {isa!r}")
        self.isa = isa
        self.granularity = THP_GRANULARITY[isa]
        self._weighted_usage = 0.0
        self._weight = 0.0

    def usage_bytes(self, processes: Iterable[KernelProcess]) -> int:
        """Current apparent usage (total - MemAvailable) across processes."""
        total = 0
        for proc in processes:
            for area in proc.aspace.areas():
                populated = area.populated_bytes
                if populated == 0:
                    continue
                granularity = min(self.granularity, area.length)
                charged = -(-populated // granularity) * granularity
                total += min(charged, area.length)
        return total

    def sample(self, processes: Iterable[KernelProcess], weight: float = 1.0) -> int:
        """Record a (time-weighted) sample and return the instant usage."""
        usage = self.usage_bytes(processes)
        self._weighted_usage += usage * weight
        self._weight += weight
        return usage

    @property
    def average_bytes(self) -> float:
        if self._weight == 0:
            return 0.0
        return self._weighted_usage / self._weight
