"""The simulated kernel: syscalls, faults, locks, shootdowns.

Every entry point is a generator meant to be driven from a simulated
thread's process (``yield from kernel.sys_mprotect(...)``).  Entry
points charge CPU time to the calling thread's core (``sys`` bucket),
block the thread on the process ``mmap_lock`` where the real kernel
would, and deliver TLB-shootdown IPIs to other cores running threads of
the same process.

Locking summary (mirrors Linux, and §3.1 of the paper):

====================  ===========  =====================================
operation             mmap_lock    notes
====================  ===========  =====================================
mmap / munmap         write        VMA insert/remove
mprotect              write        VMA split/merge; zap + shootdown when
                                   removing permissions from populated
                                   pages — the ``mprotect`` strategy's
                                   per-iteration cost
madvise(DONTNEED)     read         PTE zap + shootdown, but concurrent
                                   with faults on other threads
anonymous fault       read         demand-zero page install
userfaultfd fault     read         SIGBUS → handler → UFFDIO ioctl; the
                                   paper's point is that there is *no
                                   write-side* serialisation
uffd register         write        once per arena, at setup
====================  ===========  =====================================

Fault *batching*: real faults are per-page events; simulating millions
of them individually would drown the event queue.  ``fault_*_batch``
services ``n`` pages in one critical section whose length is the sum of
the per-page costs, preserving both total CPU time and (to within one
batch) the lock-contention behaviour.  Batch sizes are chosen by the
caller (the harness uses 64 pages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cpu.core import SYS, USER
from repro.cpu.machine import Machine
from repro.cpu.thread import SimThread
from repro.oskernel.addressspace import AddressSpace, Area
from repro.oskernel.layout import KernelCosts
from repro.oskernel.vma import Prot, ProtectOutcome
from repro.sim.engine import Engine
from repro.sim.resources import RWLock
from repro.trace.events import (
    FAULT_ANON,
    FAULT_UFFD,
    SIGNAL_SIGSEGV,
    SYSCALL_MADVISE,
    SYSCALL_MMAP,
    SYSCALL_MPROTECT,
    SYSCALL_MUNMAP,
    SYSCALL_UFFD_REGISTER,
    SYSCALL_WASI,
    TLB_SHOOTDOWN,
    VMA_MUTATE,
)
from repro.trace.tracer import TRACE


class SegFault(Exception):
    """An access to an address with no valid mapping (delivered as SIGSEGV)."""


#: 4 KiB pages per transparent huge page (2 MiB PMD mapping).
THP_PAGES = 512


def _lock_write(thread: "SimThread", proc: "KernelProcess") -> Generator:
    """Take mmap_lock for writing; stay on-CPU when uncontended.

    A free rwsem is acquired with one atomic — the thread only leaves
    the CPU (and the scheduler only records switches) on the slow path.
    """
    lock = proc.mmap_lock
    if not lock.active_writer and not lock.active_readers and not lock._queue:
        yield from lock.acquire_write()
    else:
        yield from thread.block_on(lock.acquire_write())


def _lock_read(thread: "SimThread", proc: "KernelProcess") -> Generator:
    lock = proc.mmap_lock
    if not lock.active_writer and not any(
        kind == lock.WRITE for kind, _ in lock._queue
    ):
        token = yield from lock.acquire_read()
    else:
        token = yield from thread.block_on(lock.acquire_read())
    return token


def _zap_units(pages: int, thp: bool) -> int:
    """Mapping-table units of work for ``pages`` 4 KiB pages."""
    if not thp:
        return pages
    return -(-pages // THP_PAGES)


@dataclass
class KernelProcess:
    """A thread group: shared address space and shared mmap_lock."""

    tgid: int
    name: str
    aspace: AddressSpace
    mmap_lock: RWLock
    #: Cores that have run threads of this process (mm_cpumask): TLB
    #: shootdowns IPI all of them, busy or lazily idle.
    cpumask: set = field(default_factory=set)
    #: Aggregate counters for experiment reporting.
    stats: dict = field(
        default_factory=lambda: {
            "mprotect_calls": 0,
            "madvise_calls": 0,
            "mmap_calls": 0,
            "munmap_calls": 0,
            "anon_faults": 0,
            "uffd_faults": 0,
            "shootdowns": 0,
            "pages_zapped": 0,
            "pages_populated": 0,
            "wasi_calls": 0,
            "wasi_bytes": 0,
        }
    )
    #: Per-syscall-name accumulators for the WASI scenario family.
    #: ``syscall_time`` sums the seconds charged to ``sys`` per name in
    #: batch emission order — the reconciliation contract with the trace
    #: layer depends on this order, so never re-sort before summing.
    syscall_time: dict = field(default_factory=dict)
    syscall_calls: dict = field(default_factory=dict)


class Kernel:
    """Facade over the simulated memory-management subsystem."""

    def __init__(
        self,
        engine: Engine,
        machine: Machine,
        costs: Optional[KernelCosts] = None,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.costs = costs or KernelCosts()
        self._next_tgid = 1
        self.processes: dict[int, KernelProcess] = {}

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def create_process(self, name: str = "") -> KernelProcess:
        tgid = self._next_tgid
        self._next_tgid += 1
        proc = KernelProcess(
            tgid=tgid,
            name=name or f"proc{tgid}",
            aspace=AddressSpace(),
            mmap_lock=RWLock(self.engine, name=f"mmap_lock.{tgid}"),
        )
        self.processes[tgid] = proc
        return proc

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _emit(self, name: str, thread: SimThread, proc: KernelProcess, **args) -> None:
        """Emit a kernel event attributed to the calling thread.

        Callers guard on ``TRACE.enabled`` so the disabled path stays a
        single attribute check.
        """
        TRACE.emit(
            self.engine.now, name,
            thread=thread.name, core=thread.core.index, tgid=proc.tgid, **args,
        )

    # ------------------------------------------------------------------
    # Syscalls
    # ------------------------------------------------------------------
    def sys_mmap_reserve(
        self, thread: SimThread, proc: KernelProcess, length: int, name: str = ""
    ) -> Generator:
        """Reserve a PROT_NONE region (the 8 GiB guard reservation)."""
        c = self.costs
        proc.stats["mmap_calls"] += 1
        entered = self.engine.now
        yield from thread.run(c.syscall_entry + c.vma_find, SYS)
        yield from _lock_write(thread, proc)
        area = proc.aspace.map_area(length, name=name)
        if TRACE.enabled:
            self._emit(
                VMA_MUTATE, thread, proc,
                op="map", area=area.name, bytes=area.length, excl=True,
            )
        yield from thread.run(c.mmap_write_overhead + c.vma_split, SYS)
        proc.mmap_lock.release_write()
        if TRACE.enabled:
            self._emit(
                SYSCALL_MMAP, thread, proc,
                area=area.name, bytes=area.length, dur=self.engine.now - entered,
            )
        return area

    def sys_munmap(self, thread: SimThread, proc: KernelProcess, area: Area) -> Generator:
        c = self.costs
        proc.stats["munmap_calls"] += 1
        entered = self.engine.now
        yield from thread.run(c.syscall_entry + c.vma_find, SYS)
        yield from _lock_write(thread, proc)
        zapped = proc.aspace.unmap_area(area)
        proc.stats["pages_zapped"] += zapped
        if TRACE.enabled:
            self._emit(
                VMA_MUTATE, thread, proc,
                op="unmap", area=area.name, pages=zapped, excl=True,
            )
        work = c.mmap_write_overhead + c.vma_merge + zapped * c.pte_zap_per_page
        yield from thread.run(work, SYS)
        if zapped:
            yield from self._shootdown(thread, proc)
        proc.mmap_lock.release_write()
        if TRACE.enabled:
            self._emit(
                SYSCALL_MUNMAP, thread, proc,
                area=area.name, zapped=zapped, dur=self.engine.now - entered,
            )
        return zapped

    def sys_mprotect(
        self,
        thread: SimThread,
        proc: KernelProcess,
        area: Area,
        offset: int,
        length: int,
        prot: Prot,
        thp: bool = False,
    ) -> Generator:
        """Change protections; exclusive mmap_lock for the whole operation.

        ``thp`` marks a region backed by transparent huge pages: the
        PTE-zap work then scales with 2 MiB mappings, not 4 KiB ones.
        """
        c = self.costs
        proc.stats["mprotect_calls"] += 1
        entered = self.engine.now
        yield from thread.run(c.syscall_entry + c.vma_find, SYS)
        yield from _lock_write(thread, proc)
        outcome: ProtectOutcome = area.prot_map.protect(offset, offset + length, prot)
        if TRACE.enabled:
            self._emit(
                VMA_MUTATE, thread, proc,
                op="protect", area=area.name, prot=int(prot),
                splits=outcome.splits, merges=outcome.merges, excl=True,
            )
        work = (
            c.mmap_write_overhead
            + outcome.splits * c.vma_split
            + outcome.merges * c.vma_merge
        )
        zapped = 0
        if not prot & Prot.READ:
            # Removing access: populated pages must be zapped and every
            # core's TLB flushed before the syscall can return.
            zapped = area.zap(offset, length)
            proc.stats["pages_zapped"] += zapped
            if TRACE.enabled and zapped:
                self._emit(
                    VMA_MUTATE, thread, proc,
                    op="zap", area=area.name, pages=zapped, excl=True,
                )
            work += _zap_units(zapped, thp) * c.pte_zap_per_page
        yield from thread.run(work, SYS)
        if zapped:
            yield from self._shootdown(thread, proc)
        proc.mmap_lock.release_write()
        if TRACE.enabled:
            self._emit(
                SYSCALL_MPROTECT, thread, proc,
                area=area.name, prot=int(prot), zapped=zapped,
                splits=outcome.splits, merges=outcome.merges,
                dur=self.engine.now - entered,
            )
        return outcome

    def sys_madvise_dontneed(
        self,
        thread: SimThread,
        proc: KernelProcess,
        area: Area,
        offset: int,
        length: int,
        thp: bool = False,
    ) -> Generator:
        """Zap a range back to demand-zero; shared mmap_lock."""
        c = self.costs
        proc.stats["madvise_calls"] += 1
        entered = self.engine.now
        yield from thread.run(c.syscall_entry + c.vma_find, SYS)
        token = yield from _lock_read(thread, proc)
        zapped = area.zap(offset, length)
        proc.stats["pages_zapped"] += zapped
        if TRACE.enabled and zapped:
            # PTE zap under the *read* lock (page-table locks serialise
            # the actual PTEs) — not an exclusive VMA mutation.
            self._emit(
                VMA_MUTATE, thread, proc,
                op="zap", area=area.name, pages=zapped, excl=False,
            )
        yield from thread.run(_zap_units(zapped, thp) * c.pte_zap_per_page, SYS)
        if zapped:
            yield from self._shootdown(thread, proc)
        proc.mmap_lock.release_read(token)
        if TRACE.enabled:
            self._emit(
                SYSCALL_MADVISE, thread, proc,
                area=area.name, zapped=zapped, dur=self.engine.now - entered,
            )
        return zapped

    def sys_wasi_batch(
        self,
        thread: SimThread,
        proc: KernelProcess,
        name: str,
        calls: int,
        nbytes: int,
        seconds: float,
        per_call: float,
    ) -> Generator:
        """Charge a batch of WASI host calls of one syscall kind.

        Like the fault batches, per-call kernel crossings are folded
        into one charge: ``calls`` crossings of syscall ``name`` moving
        ``nbytes`` payload bytes total, costing ``seconds`` of ``sys``
        time (``per_call`` is the average latency, carried for the
        trace layer's log2 histograms).  WASI's fd/clock/random paths
        never touch the VMA tree, so — unlike every mm syscall above —
        no ``mmap_lock`` is taken: the bounds-strategy mmap_lock story
        is untouched by syscall pressure.
        """
        proc.stats["wasi_calls"] += calls
        proc.stats["wasi_bytes"] += nbytes
        proc.syscall_calls[name] = proc.syscall_calls.get(name, 0) + calls
        proc.syscall_time[name] = proc.syscall_time.get(name, 0.0) + seconds
        yield from thread.run(seconds, SYS)
        if TRACE.enabled:
            self._emit(
                SYSCALL_WASI, thread, proc,
                sys=name, calls=calls, bytes=nbytes,
                per_call=per_call, charged=seconds,
            )

    def sys_uffd_register(
        self, thread: SimThread, proc: KernelProcess, area: Area
    ) -> Generator:
        c = self.costs
        entered = self.engine.now
        yield from thread.run(c.syscall_entry + c.vma_find, SYS)
        yield from _lock_write(thread, proc)
        area.uffd_registered = True
        yield from thread.run(c.mmap_write_overhead, SYS)
        proc.mmap_lock.release_write()
        if TRACE.enabled:
            self._emit(
                SYSCALL_UFFD_REGISTER, thread, proc,
                area=area.name, dur=self.engine.now - entered,
            )

    # ------------------------------------------------------------------
    # Fault paths
    # ------------------------------------------------------------------
    def fault_anon_batch(
        self,
        thread: SimThread,
        proc: KernelProcess,
        area: Area,
        offset: int,
        length: int,
        thp: bool = False,
    ) -> Generator:
        """Demand-zero faults over a range (read-side mmap_lock).

        With ``thp`` the fault/PTE overheads are paid per 2 MiB
        mapping; the zero-fill cost is per byte either way.
        """
        c = self.costs
        entered = self.engine.now
        pages = area.populate(offset, length)
        if pages == 0:
            return 0
        faults = _zap_units(pages, thp)
        proc.stats["anon_faults"] += faults
        proc.stats["pages_populated"] += pages
        if TRACE.enabled:
            self._emit(
                VMA_MUTATE, thread, proc,
                op="populate", area=area.name, pages=pages, excl=False,
            )
        yield from thread.run(faults * c.fault_entry, SYS)
        token = yield from _lock_read(thread, proc)
        yield from thread.run(
            faults * c.pte_set_per_page + pages * c.page_zero_per_page, SYS
        )
        proc.mmap_lock.release_read(token)
        if TRACE.enabled:
            self._emit(
                FAULT_ANON, thread, proc,
                area=area.name, faults=faults, pages=pages,
                dur=self.engine.now - entered,
            )
        return pages

    def fault_uffd_batch(
        self,
        thread: SimThread,
        proc: KernelProcess,
        area: Area,
        offset: int,
        length: int,
        range_pages: int = 1,
    ) -> Generator:
        """Userfaultfd faults: SIGBUS to the handler, then UFFDIO ioctl.

        Per fault: hardware fault + SIGBUS delivery (§2.3.1's low-latency
        same-thread scheme), a little userspace handler work, then the
        UFFDIO_ZEROPAGE/COPY ioctl which installs pages under the *read*
        side of mmap_lock only.  ``range_pages`` is how many pages the
        handler populates per fault — the paper's handler "can choose to
        populate the faulted page, or a larger range of pages" (§2.3.1),
        which is what keeps the per-page overhead competitive.
        """
        c = self.costs
        if not area.uffd_registered:
            raise SegFault(f"uffd fault on unregistered area {area.name!r}")
        entered = self.engine.now
        pages = area.populate(offset, length)
        if pages == 0:
            return 0
        faults = -(-pages // max(1, range_pages))
        proc.stats["uffd_faults"] += faults
        proc.stats["pages_populated"] += pages
        if TRACE.enabled:
            self._emit(
                VMA_MUTATE, thread, proc,
                op="populate", area=area.name, pages=pages, excl=False,
            )
        yield from thread.run(faults * (c.fault_entry + c.signal_deliver), SYS)
        # Userspace handler: bounds check against the atomic size variable.
        yield from thread.run(faults * 0.05e-6, USER)
        token = yield from _lock_read(thread, proc)
        yield from thread.run(
            faults * c.uffd_ioctl
            + pages * (c.pte_set_per_page + c.page_zero_per_page),
            SYS,
        )
        proc.mmap_lock.release_read(token)
        if TRACE.enabled:
            self._emit(
                FAULT_UFFD, thread, proc,
                area=area.name, faults=faults, pages=pages,
                dur=self.engine.now - entered,
            )
        return pages

    def deliver_sigsegv(self, thread: SimThread) -> Generator:
        """Cost of catching an out-of-bounds access via SIGSEGV."""
        yield from thread.run(
            self.costs.fault_entry + self.costs.signal_deliver, SYS
        )
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, SIGNAL_SIGSEGV,
                thread=thread.name, core=thread.core.index, tgid=thread.tgid,
            )

    # ------------------------------------------------------------------
    # TLB shootdown
    # ------------------------------------------------------------------
    def _shootdown(self, thread: SimThread, proc: KernelProcess) -> Generator:
        """Flush the local TLB and IPI every core in the process's
        mm_cpumask (cores currently running its threads plus lazy-TLB
        cores that ran them earlier)."""
        c = self.costs
        proc.stats["shootdowns"] += 1
        indices = set(proc.cpumask)
        for core in self.machine.cores:
            if core.current is not None and core.current.tgid == proc.tgid:
                indices.add(core.index)
        indices.discard(thread.core.index)
        if TRACE.enabled:
            self._emit(TLB_SHOOTDOWN, thread, proc, targets=len(indices))
        for index in indices:
            self.machine.cores[index].post_irq(c.tlb_ipi_service)
        yield from thread.run(
            c.tlb_local_flush + len(indices) * c.tlb_ipi_send, SYS
        )
