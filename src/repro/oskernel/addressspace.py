"""Per-process address spaces and reservation areas.

An :class:`Area` is one contiguous virtual reservation — for this
reproduction, typically the 8 GiB guard region backing one WebAssembly
linear memory.  It combines:

* a :class:`~repro.oskernel.vma.ProtectionMap` (the VMA structure), and
* the set of *populated* pages (pages with an installed PTE).

The distinction is the crux of the paper's kernel-side story: changing
protections is a VMA operation under the exclusive ``mmap_lock``;
populating a page is a fault under the shared lock; and tearing down
populated pages requires both PTE zapping and a TLB shootdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.oskernel.layout import PAGE_SIZE
from repro.oskernel.vma import Prot, ProtectionMap, VmaError


def pages_in(length: int) -> int:
    """Number of base pages covering ``length`` bytes (rounded up)."""
    return -(-length // PAGE_SIZE)


@dataclass
class Area:
    """A contiguous virtual reservation within an address space."""

    start: int
    length: int
    name: str = ""
    uffd_registered: bool = False
    prot_map: ProtectionMap = field(init=False)
    #: Indices (relative to the area) of populated pages.
    populated: set = field(default_factory=set)

    def __post_init__(self) -> None:
        self.prot_map = ProtectionMap(self.length, Prot.NONE)

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def populated_bytes(self) -> int:
        return len(self.populated) * PAGE_SIZE

    def page_range(self, offset: int, length: int) -> range:
        if not 0 <= offset <= offset + length <= self.length:
            raise VmaError(
                f"range [{offset:#x},{offset + length:#x}) outside area {self.name!r}"
            )
        first = offset // PAGE_SIZE
        last = pages_in(offset + length)
        return range(first, last)

    def populate(self, offset: int, length: int) -> int:
        """Mark pages populated; returns how many were newly installed."""
        added = 0
        for page in self.page_range(offset, length):
            if page not in self.populated:
                self.populated.add(page)
                added += 1
        return added

    def zap(self, offset: int, length: int) -> int:
        """Unpopulate pages in the range; returns how many were zapped."""
        zapped = 0
        for page in self.page_range(offset, length):
            if page in self.populated:
                self.populated.discard(page)
                zapped += 1
        return zapped

    def zap_all(self) -> int:
        zapped = len(self.populated)
        self.populated.clear()
        return zapped


class AddressSpace:
    """All reservations of one process, plus a simple placement policy."""

    #: Reservations start high, like mmap on Linux, and grow upwards.
    BASE_ADDRESS = 0x7F00_0000_0000

    def __init__(self) -> None:
        self._areas: dict[int, Area] = {}
        self._cursor = self.BASE_ADDRESS

    def map_area(self, length: int, name: str = "") -> Area:
        if length <= 0:
            raise VmaError(f"cannot map area of length {length}")
        # Align placement to a page boundary and leave a guard gap.
        aligned = pages_in(length) * PAGE_SIZE
        area = Area(start=self._cursor, length=aligned, name=name)
        self._areas[area.start] = area
        self._cursor += aligned + PAGE_SIZE
        return area

    def unmap_area(self, area: Area) -> int:
        """Remove a reservation; returns the number of zapped pages."""
        if area.start not in self._areas:
            raise VmaError(f"area {area.name!r} not mapped in this address space")
        del self._areas[area.start]
        return area.zap_all()

    def find_area(self, address: int) -> Optional[Area]:
        for area in self._areas.values():
            if area.start <= address < area.end:
                return area
        return None

    def areas(self) -> Iterator[Area]:
        return iter(self._areas.values())

    @property
    def vma_count(self) -> int:
        """Total protection intervals across all reservations."""
        return sum(area.prot_map.interval_count for area in self._areas.values())

    @property
    def populated_bytes(self) -> int:
        return sum(area.populated_bytes for area in self._areas.values())
