"""Simulated Linux memory-management subsystem.

This package models the slice of the Linux kernel that the paper's
bounds-checking strategies exercise:

* per-process address spaces with a real VMA (protection-interval)
  structure that splits and merges on ``mprotect`` (:mod:`vma`,
  :mod:`addressspace`);
* the process-wide ``mmap_lock`` read/write semaphore whose write-side
  serialisation under frequent ``mprotect`` is the paper's headline
  multithreaded-scaling finding (§4.1.1, Figures 3–5);
* demand paging: anonymous page faults, ``userfaultfd`` SIGBUS-style
  faults serviced by a userspace handler, zero-fill costs;
* TLB shootdown IPIs delivered to every other core running a thread of
  the same process;
* ``/proc/stat``-style CPU accounting (:mod:`procstat`) and a
  ``MemAvailable`` model with transparent-huge-page granularity
  (:mod:`meminfo`) for Figures 4 and 6.

All latency constants live in :mod:`repro.oskernel.layout` with comments
explaining what they are calibrated against.
"""

from repro.oskernel.layout import PAGE_SIZE, WASM_PAGE_SIZE, GUARD_REGION_BYTES, KernelCosts
from repro.oskernel.vma import ProtectionMap, Prot
from repro.oskernel.addressspace import AddressSpace, Area
from repro.oskernel.kernel import Kernel, KernelProcess, SegFault
from repro.oskernel.procstat import ProcStat, UtilisationSample
from repro.oskernel.meminfo import MemInfoModel

__all__ = [
    "PAGE_SIZE",
    "WASM_PAGE_SIZE",
    "GUARD_REGION_BYTES",
    "KernelCosts",
    "ProtectionMap",
    "Prot",
    "AddressSpace",
    "Area",
    "Kernel",
    "KernelProcess",
    "SegFault",
    "ProcStat",
    "UtilisationSample",
    "MemInfoModel",
]
