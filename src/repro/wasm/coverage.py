"""Lightweight edge-coverage maps for the wasm substrate.

Three deterministic counter maps, keyed on *edges* rather than single
sites so sequence-shaped behaviour is visible:

* ``decoder``   — consecutive opcode pairs seen by the binary decoder's
  expression loop, plus ``^error`` edges where a body was rejected;
* ``validator`` — consecutive instruction pairs fed to the per-body
  type checker, plus ``^invalid`` edges where validation failed;
* ``dispatch``  — consecutive handler pairs executed by the
  interpreter's dispatch loop (under fused dispatch these are region
  heads, which is exactly what the loop dispatches), plus ``^trap`` /
  ``^return`` terminal edges and a ``^tier2`` edge for calls completed
  whole by the optimizing tier.

Every edge is a ``(prev, current)`` pair of opcode/handler names with
``^``-prefixed pseudo-nodes for entry/exit/error, so maps are plain
``dict[tuple[str, str], int]`` — deterministic, picklable, and mergeable
across worker processes by set union / counter addition.

Collection is **off by default** and costs nothing when disabled: the
decoder, validator and interpreter each test ``COVERAGE.enabled`` once
per body/call and select an instrumented copy of their loop, so the
disabled hot paths are byte-for-byte the pre-coverage code.  Enable it
around a region of interest with::

    from repro.wasm import coverage

    with coverage.collecting() as cov:
        decode_module(data)
    edges = cov.edge_keys()

The coverage-guided fuzzing campaign (:mod:`repro.fuzz`) schedules
corpus energy by the novel edges each case contributes and dedupes
cases by :meth:`CoverageMap.signature`.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, Tuple

#: Map names, in reporting order.
MAP_NAMES = ("decoder", "validator", "dispatch")

Edge = Tuple[str, str]


class CoverageMap:
    """Process-local edge counters for decoder/validator/dispatch."""

    __slots__ = ("enabled", "decoder", "validator", "dispatch")

    def __init__(self) -> None:
        self.enabled = False
        self.decoder: Dict[Edge, int] = {}
        self.validator: Dict[Edge, int] = {}
        self.dispatch: Dict[Edge, int] = {}

    def maps(self) -> Dict[str, Dict[Edge, int]]:
        return {
            "decoder": self.decoder,
            "validator": self.validator,
            "dispatch": self.dispatch,
        }

    def reset(self) -> None:
        self.decoder.clear()
        self.validator.clear()
        self.dispatch.clear()

    # -- read-out --------------------------------------------------------
    @property
    def edge_count(self) -> int:
        """Total number of *distinct* edges across all three maps."""
        return len(self.decoder) + len(self.validator) + len(self.dispatch)

    def edge_keys(self) -> FrozenSet[Tuple[str, str, str]]:
        """All distinct edges as ``(map, prev, current)`` triples."""
        return frozenset(
            (name, prev, cur)
            for name, edges in self.maps().items()
            for prev, cur in edges
        )

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """JSON-stable copy: per map, ``"prev->cur"`` keys sorted."""
        return {
            name: {
                f"{prev}->{cur}": count
                for (prev, cur), count in sorted(edges.items())
            }
            for name, edges in self.maps().items()
        }

    def signature(self) -> str:
        """Hash of the distinct-edge *sets* (counts excluded).

        Two executions signature-equal iff they covered exactly the
        same edges; the corpus scheduler dedupes on this.
        """
        return edges_signature(self.edge_keys())


def edges_signature(edges) -> str:
    """Deterministic hex digest of an iterable of edge triples."""
    digest = hashlib.sha256()
    for name, prev, cur in sorted(edges):
        digest.update(f"{name}\x00{prev}\x00{cur}\x01".encode())
    return digest.hexdigest()


#: The process-global map the substrate hooks record into.
COVERAGE = CoverageMap()


@contextmanager
def collecting(reset: bool = True) -> Iterator[CoverageMap]:
    """Enable coverage collection for the duration of the block.

    Resets the maps on entry by default so the block observes only its
    own edges; restores the previous enabled/disabled state on exit
    (so nested blocks compose).
    """
    was_enabled = COVERAGE.enabled
    if reset:
        COVERAGE.reset()
    COVERAGE.enabled = True
    try:
        yield COVERAGE
    finally:
        COVERAGE.enabled = was_enabled
