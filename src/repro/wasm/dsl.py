"""A small typed expression DSL that compiles to WebAssembly.

The paper's workloads are C programs compiled to wasm32-wasi; ours are
authored in this DSL and compiled through :mod:`repro.wasm.builder`
into genuine Wasm modules (every array access becomes a real
``f64.load``/``f64.store`` that flows through the bounds-checking
machinery).  The DSL is deliberately C-shaped:

    dm = DslModule("gemm")
    A = dm.matrix_f64("A", ni, nk)
    B = dm.matrix_f64("B", nk, nj)
    C = dm.matrix_f64("C", ni, nj)

    f = dm.func("run")
    i, j, k = f.i32("i"), f.i32("j"), f.i32("k")
    with f.for_(i, 0, ni):
        with f.for_(j, 0, nj):
            f.store(C[i, j], C[i, j] * beta)
            with f.for_(k, 0, nk):
                f.store(C[i, j], C[i, j] + alpha * A[i, k] * B[k, j])
    module = dm.build()

Expressions are typed trees (``i32``/``i64``/``f32``/``f64``); Python
operators build them, with int/float literals coerced to the other
operand's type.  Integer ``//`` and ``%`` are signed (like C); ``/`` is
float division.  Comparisons produce ``i32`` booleans.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.wasm.builder import FunctionBuilder, ModuleBuilder
from repro.wasm.module import Module
from repro.wasm.types import ValType

I32, I64, F32, F64 = "i32", "i64", "f32", "f64"
_VALTYPES = {I32: ValType.I32, I64: ValType.I64, F32: ValType.F32, F64: ValType.F64}
_ELEM_SIZE = {I32: 4, I64: 8, F32: 4, F64: 8}
#: log2(natural alignment) per element type, used for memarg align.
_ALIGN = {I32: 2, I64: 3, F32: 2, F64: 3}


class DslError(TypeError):
    """A type or usage error in DSL code (raised at build time)."""


Number = Union[int, float]
ExprLike = Union["Expr", Number]


def _coerce(value: ExprLike, to_type: str) -> "Expr":
    if isinstance(value, Expr):
        if value.type != to_type:
            raise DslError(f"type mismatch: expected {to_type}, got {value.type}")
        return value
    if isinstance(value, bool):
        raise DslError("use 0/1 integers, not Python bools")
    if isinstance(value, int):
        if to_type in (F32, F64):
            return Const(float(value), to_type)
        return Const(value, to_type)
    if isinstance(value, float):
        if to_type not in (F32, F64):
            raise DslError(f"float literal {value} where {to_type} expected")
        return Const(value, to_type)
    raise DslError(f"cannot use {value!r} as a DSL expression")


def _join(a: ExprLike, b: ExprLike) -> str:
    """Pick the common type of two operands (at least one is an Expr)."""
    if isinstance(a, Expr):
        return a.type
    if isinstance(b, Expr):
        return b.type
    raise DslError("binary operation needs at least one DSL expression")


class Expr:
    """Base class of all DSL expressions."""

    type: str = I32

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return BinOp("add", self, other)

    def __radd__(self, other: ExprLike) -> "Expr":
        return BinOp("add", other, self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return BinOp("sub", self, other)

    def __rsub__(self, other: ExprLike) -> "Expr":
        return BinOp("sub", other, self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return BinOp("mul", self, other)

    def __rmul__(self, other: ExprLike) -> "Expr":
        return BinOp("mul", other, self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        if self.type not in (F32, F64):
            raise DslError("use // for integer division")
        return BinOp("div", self, other)

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        if self.type not in (F32, F64):
            raise DslError("use // for integer division")
        return BinOp("div", other, self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        if self.type not in (I32, I64):
            raise DslError("// is integer division")
        return BinOp("div_s", self, other)

    def __mod__(self, other: ExprLike) -> "Expr":
        if self.type not in (I32, I64):
            raise DslError("% is integer remainder")
        return BinOp("rem_s", self, other)

    def __neg__(self) -> "Expr":
        if self.type in (F32, F64):
            return UnOp("neg", self)
        return BinOp("sub", Const(0, self.type), self)

    # -- bitwise (integers) ------------------------------------------------
    def __and__(self, other: ExprLike) -> "Expr":
        return BinOp("and", self, other)

    def __or__(self, other: ExprLike) -> "Expr":
        return BinOp("or", self, other)

    def __xor__(self, other: ExprLike) -> "Expr":
        return BinOp("xor", self, other)

    def __lshift__(self, other: ExprLike) -> "Expr":
        return BinOp("shl", self, other)

    def __rshift__(self, other: ExprLike) -> "Expr":
        return BinOp("shr_s", self, other)

    def shr_u(self, other: ExprLike) -> "Expr":
        return BinOp("shr_u", self, other)

    def div_u(self, other: ExprLike) -> "Expr":
        return BinOp("div_u", self, other)

    def rem_u(self, other: ExprLike) -> "Expr":
        return BinOp("rem_u", self, other)

    # -- comparisons (produce i32 booleans) -----------------------------------
    def __lt__(self, other: ExprLike) -> "Expr":
        return Compare("lt", self, other)

    def __le__(self, other: ExprLike) -> "Expr":
        return Compare("le", self, other)

    def __gt__(self, other: ExprLike) -> "Expr":
        return Compare("gt", self, other)

    def __ge__(self, other: ExprLike) -> "Expr":
        return Compare("ge", self, other)

    def eq(self, other: ExprLike) -> "Expr":
        return Compare("eq", self, other)

    def ne(self, other: ExprLike) -> "Expr":
        return Compare("ne", self, other)

    def lt_u(self, other: ExprLike) -> "Expr":
        return Compare("lt_u", self, other)

    def ge_u(self, other: ExprLike) -> "Expr":
        return Compare("ge_u", self, other)

    # -- conversions ---------------------------------------------------------
    def to_f64(self) -> "Expr":
        return Convert(self, F64)

    def to_f32(self) -> "Expr":
        return Convert(self, F32)

    def to_i32(self) -> "Expr":
        return Convert(self, I32)

    def to_i64(self) -> "Expr":
        return Convert(self, I64)

    # -- math helpers ------------------------------------------------------------
    def sqrt(self) -> "Expr":
        return UnOp("sqrt", self)

    def abs_(self) -> "Expr":
        return UnOp("abs", self)

    def min_(self, other: ExprLike) -> "Expr":
        if self.type in (F32, F64):
            return BinOp("min", self, other)
        return Select(Compare("lt", self, other), self, other)

    def max_(self, other: ExprLike) -> "Expr":
        if self.type in (F32, F64):
            return BinOp("max", self, other)
        return Select(Compare("gt", self, other), self, other)

    # -- emission (implemented by subclasses) ----------------------------------------
    def emit(self, fb: FunctionBuilder) -> None:
        raise NotImplementedError


class Const(Expr):
    def __init__(self, value: Number, type_: str) -> None:
        self.value = value
        self.type = type_

    def emit(self, fb: FunctionBuilder) -> None:
        fb.emit(f"{self.type}.const", self.value)


class LocalRef(Expr):
    """A typed local variable (also assignable via DslFunc.set)."""

    def __init__(self, index: int, type_: str, name: str = "") -> None:
        self.index = index
        self.type = type_
        self.name = name

    def emit(self, fb: FunctionBuilder) -> None:
        fb.emit("local.get", self.index)


class BinOp(Expr):
    def __init__(self, op: str, a: ExprLike, b: ExprLike) -> None:
        self.type = _join(a, b)
        self.a = _coerce(a, self.type)
        self.b = _coerce(b, self.type)
        if op in ("and", "or", "xor", "shl", "shr_s", "shr_u", "div_s", "rem_s",
                  "div_u", "rem_u") and self.type not in (I32, I64):
            raise DslError(f"{op} requires an integer type, got {self.type}")
        if op in ("div", "min", "max") and self.type not in (F32, F64):
            raise DslError(f"{op} requires a float type, got {self.type}")
        self.op = op

    def emit(self, fb: FunctionBuilder) -> None:
        self.a.emit(fb)
        self.b.emit(fb)
        fb.emit(f"{self.type}.{self.op}")


class UnOp(Expr):
    def __init__(self, op: str, a: Expr) -> None:
        if op in ("neg", "abs", "sqrt", "floor", "ceil", "trunc", "nearest") and a.type not in (F32, F64):
            raise DslError(f"{op} requires a float type, got {a.type}")
        self.op = op
        self.a = a
        self.type = a.type

    def emit(self, fb: FunctionBuilder) -> None:
        self.a.emit(fb)
        fb.emit(f"{self.type}.{self.op}")


class Compare(Expr):
    def __init__(self, op: str, a: ExprLike, b: ExprLike) -> None:
        operand_type = _join(a, b)
        self.a = _coerce(a, operand_type)
        self.b = _coerce(b, operand_type)
        if operand_type in (I32, I64) and op in ("lt", "le", "gt", "ge"):
            op += "_s"
        self.op = op
        self.operand_type = operand_type
        self.type = I32

    def emit(self, fb: FunctionBuilder) -> None:
        self.a.emit(fb)
        self.b.emit(fb)
        fb.emit(f"{self.operand_type}.{self.op}")


class Select(Expr):
    """Branch-free conditional: ``cond ? a : b``."""

    def __init__(self, cond: ExprLike, a: ExprLike, b: ExprLike) -> None:
        self.cond = _coerce(cond, I32)
        if isinstance(a, Expr) or isinstance(b, Expr):
            self.type = _join(a, b)
        else:
            # Both arms are literals: floats select as f64, ints as i32.
            self.type = F64 if isinstance(a, float) or isinstance(b, float) else I32
        self.a = _coerce(a, self.type)
        self.b = _coerce(b, self.type)

    def emit(self, fb: FunctionBuilder) -> None:
        self.a.emit(fb)
        self.b.emit(fb)
        self.cond.emit(fb)
        fb.emit("select")


_CONVERT_OPS = {
    (I32, I64): "i64.extend_i32_s",
    (I64, I32): "i32.wrap_i64",
    (I32, F64): "f64.convert_i32_s",
    (I32, F32): "f32.convert_i32_s",
    (I64, F64): "f64.convert_i64_s",
    (I64, F32): "f32.convert_i64_s",
    (F64, I32): "i32.trunc_f64_s",
    (F32, I32): "i32.trunc_f32_s",
    (F64, I64): "i64.trunc_f64_s",
    (F32, I64): "i64.trunc_f32_s",
    (F32, F64): "f64.promote_f32",
    (F64, F32): "f32.demote_f64",
}


class Convert(Expr):
    def __init__(self, a: Expr, to_type: str) -> None:
        if a.type == to_type:
            raise DslError(f"conversion from {a.type} to itself")
        self.a = a
        self.type = to_type

    def emit(self, fb: FunctionBuilder) -> None:
        self.a.emit(fb)
        fb.emit(_CONVERT_OPS[(self.a.type, self.type)])


class ArrayElem(Expr):
    """``A[i, j]`` — a load as an expression, a location for stores."""

    def __init__(self, array: "Array", indices: Tuple[ExprLike, ...]) -> None:
        self.array = array
        self.indices = indices
        self.type = array.elem

    def address(self) -> Expr:
        return self.array.address_of(self.indices)

    def emit(self, fb: FunctionBuilder) -> None:
        self.address().emit(fb)
        fb.emit(f"{self.type}.load", _ALIGN[self.type], 0)

    def emit_store(self, fb: FunctionBuilder, value: Expr) -> None:
        self.address().emit(fb)
        value.emit(fb)
        fb.emit(f"{self.type}.store", _ALIGN[self.type], 0)


class Array:
    """A typed array laid out in linear memory (row-major)."""

    def __init__(self, name: str, elem: str, shape: Tuple[int, ...], base: int) -> None:
        if not shape or any(dim <= 0 for dim in shape):
            raise DslError(f"array {name!r} has invalid shape {shape}")
        self.name = name
        self.elem = elem
        self.shape = shape
        self.base = base
        self.strides: Tuple[int, ...] = tuple(
            _product(shape[k + 1 :]) for k in range(len(shape))
        )

    @property
    def count(self) -> int:
        return _product(self.shape)

    @property
    def nbytes(self) -> int:
        return self.count * _ELEM_SIZE[self.elem]

    def __getitem__(self, indices) -> ArrayElem:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != len(self.shape):
            raise DslError(
                f"array {self.name!r} has {len(self.shape)} dims, got {len(indices)} indices"
            )
        return ArrayElem(self, indices)

    def address_of(self, indices: Tuple[ExprLike, ...]) -> Expr:
        """byte address = base + elem_size * Σ idx_k * stride_k."""
        elem_size = _ELEM_SIZE[self.elem]
        linear: Optional[Expr] = None
        constant = 0
        for index, stride in zip(indices, self.strides):
            if isinstance(index, int):
                constant += index * stride
                continue
            term = _coerce(index, I32) if stride == 1 else _coerce(index, I32) * stride
            linear = term if linear is None else linear + term
        offset = self.base + constant * elem_size
        if linear is None:
            return Const(offset, I32)
        scaled = linear * elem_size
        return scaled if offset == 0 else scaled + offset


def _product(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


class CallExpr(Expr):
    def __init__(self, target: "DslFunc", args: Tuple[Expr, ...]) -> None:
        if len(target.fb.results) != 1:
            raise DslError(f"call expression needs exactly one result")
        self.target = target
        self.args = args
        self.type = target.fb.results[0].value

    def emit(self, fb: FunctionBuilder) -> None:
        for arg in self.args:
            arg.emit(fb)
        fb.emit("call", self.target.fb.index)


class ImportedFunc:
    """A host function imported by the module (e.g. a WASI syscall)."""

    def __init__(self, module: str, name: str, index: int,
                 params: Tuple[str, ...], results: Tuple[str, ...]) -> None:
        self.module = module
        self.name = name
        self.index = index
        self.params = params
        self.results = results


class CallImportExpr(Expr):
    def __init__(self, target: ImportedFunc, args: Tuple[Expr, ...]) -> None:
        if len(target.results) != 1:
            raise DslError("imported-call expression needs exactly one result")
        self.target = target
        self.args = args
        self.type = target.results[0]

    def emit(self, fb: FunctionBuilder) -> None:
        for arg in self.args:
            arg.emit(fb)
        fb.emit("call", self.target.index)


class _IfContext:
    """Yielded by DslFunc.if_; supports a one-shot ``otherwise()``."""

    def __init__(self, func: "DslFunc") -> None:
        self._func = func
        self._else_done = False

    def otherwise(self) -> None:
        if self._else_done:
            raise DslError("otherwise() called twice")
        self._else_done = True
        self._func.fb.else_()


class DslFunc:
    """A function under construction."""

    def __init__(self, module: "DslModule", fb: FunctionBuilder,
                 param_refs: List[LocalRef]) -> None:
        self.module = module
        self.fb = fb
        self.params = param_refs

    # -- locals -----------------------------------------------------------
    def local(self, type_: str, name: str = "") -> LocalRef:
        index = self.fb.add_local(_VALTYPES[type_])
        return LocalRef(index, type_, name)

    def i32(self, name: str = "") -> LocalRef:
        return self.local(I32, name)

    def i64(self, name: str = "") -> LocalRef:
        return self.local(I64, name)

    def f32(self, name: str = "") -> LocalRef:
        return self.local(F32, name)

    def f64(self, name: str = "") -> LocalRef:
        return self.local(F64, name)

    # -- statements ------------------------------------------------------------
    def set(self, target: LocalRef, value: ExprLike) -> None:
        if not isinstance(target, LocalRef):
            raise DslError("set() target must be a local; use store() for arrays")
        _coerce(value, target.type).emit(self.fb)
        self.fb.emit("local.set", target.index)

    def store(self, target: ArrayElem, value: ExprLike) -> None:
        if not isinstance(target, ArrayElem):
            raise DslError("store() target must be an array element")
        target.emit_store(self.fb, _coerce(value, target.type))

    def inc(self, target: LocalRef, amount: ExprLike = 1) -> None:
        self.set(target, target + amount)

    def ret(self, value: Optional[ExprLike] = None) -> None:
        if value is not None:
            results = self.fb.results
            if len(results) != 1:
                raise DslError("ret with value in a function with no result")
            _coerce(value, results[0].value).emit(self.fb)
        self.fb.emit("return")

    def call(self, target: "DslFunc", *args: ExprLike):
        """Call another function: statement if void, Expr if one result."""
        params = target.fb.params
        if len(args) != len(params):
            raise DslError(
                f"{target.fb.name} takes {len(params)} args, got {len(args)}"
            )
        coerced = tuple(
            _coerce(arg, param.value) for arg, param in zip(args, params)
        )
        if target.fb.results:
            return CallExpr(target, coerced)
        for arg in coerced:
            arg.emit(self.fb)
        self.fb.emit("call", target.fb.index)
        return None

    def call_import(self, target: ImportedFunc, *args: ExprLike):
        """Call an imported host function: statement if void, Expr else."""
        if len(args) != len(target.params):
            raise DslError(
                f"import {target.module}.{target.name} takes "
                f"{len(target.params)} args, got {len(args)}"
            )
        coerced = tuple(
            _coerce(arg, ptype) for arg, ptype in zip(args, target.params)
        )
        if target.results:
            return CallImportExpr(target, coerced)
        for arg in coerced:
            arg.emit(self.fb)
        self.fb.emit("call", target.index)
        return None

    def eval_drop(self, expr: Expr) -> None:
        """Evaluate an expression for its side effects and drop the value."""
        expr.emit(self.fb)
        self.fb.emit("drop")

    # -- control flow ------------------------------------------------------------
    @contextmanager
    def for_(self, var: LocalRef, start: ExprLike, stop: ExprLike,
             step: int = 1) -> Iterator[None]:
        """C-style counted loop.

        step > 0: ``for (var = start; var < stop; var += step)``
        step < 0: ``for (var = start; var > stop; var += step)``
        """
        if step == 0:
            raise DslError("for_ step must be non-zero")
        if var.type != I32:
            raise DslError("loop variable must be i32")
        fb = self.fb
        self.set(var, start)
        with fb.block() as exit_label:
            with fb.loop() as top:
                # Exit test.
                exit_cond = (var >= stop) if step > 0 else (var <= stop)
                exit_cond.emit(fb)
                fb.br_if(exit_label)
                yield
                self.set(var, var + step)
                fb.br(top)

    @contextmanager
    def while_(self, cond_factory) -> Iterator[None]:
        """``while (cond)``; pass a zero-arg callable building the condition."""
        fb = self.fb
        with fb.block() as exit_label:
            with fb.loop() as top:
                cond = cond_factory() if callable(cond_factory) else cond_factory
                _coerce(cond, I32).emit(fb)
                fb.emit("i32.eqz")
                fb.br_if(exit_label)
                yield
                fb.br(top)

    @contextmanager
    def if_(self, cond: ExprLike) -> Iterator[_IfContext]:
        _coerce(cond, I32).emit(self.fb)
        with self.fb.if_():
            yield _IfContext(self)


class DslModule:
    """A module under construction: arrays in linear memory + functions."""

    #: Reserve the first 64 KiB like wasm-ld does (null page + stack area).
    DATA_BASE = 0x1_0000

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.mb = ModuleBuilder(name)
        self._cursor = self.DATA_BASE
        self.arrays: List[Array] = []
        self._funcs: List[DslFunc] = []
        self._memory_declared = False

    # -- data layout ---------------------------------------------------------
    def array(self, name: str, elem: str, *shape: int) -> Array:
        if elem not in _ELEM_SIZE:
            raise DslError(f"unknown element type {elem!r}")
        arr = Array(name, elem, tuple(shape), self._cursor)
        # Keep every array 64-byte aligned (cache-line), like polybench's
        # posix_memalign allocation.
        self._cursor += (arr.nbytes + 63) // 64 * 64
        self.arrays.append(arr)
        return arr

    def array_f64(self, name: str, *shape: int) -> Array:
        return self.array(name, F64, *shape)

    def array_f32(self, name: str, *shape: int) -> Array:
        return self.array(name, F32, *shape)

    def array_i32(self, name: str, *shape: int) -> Array:
        return self.array(name, I32, *shape)

    def array_i64(self, name: str, *shape: int) -> Array:
        return self.array(name, I64, *shape)

    # aliases reading naturally for 2-D data
    def matrix_f64(self, name: str, rows: int, cols: int) -> Array:
        return self.array(name, F64, rows, cols)

    @property
    def data_bytes(self) -> int:
        return self._cursor

    @property
    def required_pages(self) -> int:
        return -(-self._cursor // (64 * 1024))

    # -- imports ---------------------------------------------------------------
    def import_func(self, module: str, name: str,
                    params: Sequence[str] = (),
                    results: Sequence[str] = ()) -> ImportedFunc:
        """Declare a host import (must precede every ``func`` call —
        imported function indices come first in the Wasm index space)."""
        index = self.mb.import_func(
            module, name,
            [_VALTYPES[p] for p in params],
            [_VALTYPES[r] for r in results],
        )
        return ImportedFunc(module, name, index,
                            tuple(params), tuple(results))

    # -- functions ---------------------------------------------------------------
    def func(self, name: str, params: Sequence[Tuple[str, str]] = (),
             results: Sequence[str] = (), export: bool = True) -> DslFunc:
        param_types = [_VALTYPES[ptype] for _, ptype in params]
        result_types = [_VALTYPES[rtype] for rtype in results]
        fb = self.mb.func(name, param_types, result_types, export=export)
        refs = [
            LocalRef(index, ptype, pname)
            for index, (pname, ptype) in enumerate(params)
        ]
        dsl_func = DslFunc(self, fb, refs)
        self._funcs.append(dsl_func)
        return dsl_func

    # -- finalisation ------------------------------------------------------------
    def build(self, extra_pages: int = 0) -> Module:
        if not self._memory_declared:
            pages = self.required_pages + extra_pages
            self.mb.add_memory(max(pages, 1), max(pages, 1) + 16)
            self._memory_declared = True
        return self.mb.build()
