"""Encode a :class:`~repro.wasm.module.Module` to WebAssembly binary.

Produces spec-conformant ``.wasm`` bytes: magic + version header
followed by the standard numbered sections.  Round-trips with
:mod:`repro.wasm.decoder` (property-tested in the suite).
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.wasm import opcodes
from repro.wasm.instructions import Instr
from repro.wasm.leb128 import encode_signed, encode_u32
from repro.wasm.module import Module
from repro.wasm.types import (
    FUNC_TYPE_TAG,
    FUNCREF,
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_EXPORT_KIND = {"func": 0, "table": 1, "memory": 2, "global": 3}


def encode_module(module: Module) -> bytes:
    """Serialise a module to its binary representation."""
    out = bytearray(MAGIC + VERSION)
    _section(out, 1, _encode_types(module))
    _section(out, 2, _encode_imports(module))
    _section(out, 3, _encode_func_decls(module))
    _section(out, 4, _encode_tables(module))
    _section(out, 5, _encode_memories(module))
    _section(out, 6, _encode_globals(module))
    _section(out, 7, _encode_exports(module))
    if module.start is not None:
        _section(out, 8, encode_u32(module.start))
    _section(out, 9, _encode_elements(module))
    _section(out, 10, _encode_code(module))
    _section(out, 11, _encode_data(module))
    return bytes(out)


def encode_expr(body: Iterable[Instr]) -> bytes:
    """Encode an instruction sequence followed by the ``end`` byte."""
    out = bytearray()
    for ins in body:
        out += encode_instr(ins)
    out.append(0x0B)
    return bytes(out)


def encode_instr(ins: Instr) -> bytes:
    info = ins.info
    if info.code > 0xFF:
        # 0xFC-prefixed opcode: prefix byte + LEB128 sub-opcode.
        out = bytearray([info.code >> 8])
        out += encode_u32(info.code & 0xFF)
    else:
        out = bytearray([info.code])
    imm = info.imm
    if imm == "":
        pass
    elif imm == "u32":
        out += encode_u32(ins.args[0])
    elif imm == "memarg":
        align, offset = ins.args
        out += encode_u32(align)
        out += encode_u32(offset)
    elif imm == "i32":
        out += encode_signed(_signed32(ins.args[0]), 32)
    elif imm == "i64":
        out += encode_signed(_signed64(ins.args[0]), 64)
    elif imm == "f32":
        out += struct.pack("<f", ins.args[0])
    elif imm == "f64":
        out += struct.pack("<d", ins.args[0])
    elif imm == "block":
        out += _encode_block_type(ins.args[0])
    elif imm == "br_table":
        labels, default = ins.args
        out += encode_u32(len(labels))
        for label in labels:
            out += encode_u32(label)
        out += encode_u32(default)
    elif imm == "call_indirect":
        type_index, table_index = ins.args
        out += encode_u32(type_index)
        out += encode_u32(table_index)
    elif imm == "memidx":
        out.append(0x00)
    elif imm == "memcopy":
        out += b"\x00\x00"
    elif imm == "memfill":
        out.append(0x00)
    else:  # pragma: no cover - table is closed
        raise AssertionError(f"unhandled immediate kind {imm!r}")
    return bytes(out)


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _section(out: bytearray, section_id: int, payload: bytes) -> None:
    if not payload:
        return
    out.append(section_id)
    out += encode_u32(len(payload))
    out += payload


def _vec(items: List[bytes]) -> bytes:
    out = bytearray(encode_u32(len(items)))
    for item in items:
        out += item
    return bytes(out)


def _encode_types(module: Module) -> bytes:
    if not module.types:
        return b""
    return _vec([_encode_func_type(t) for t in module.types])


def _encode_func_type(func_type: FuncType) -> bytes:
    out = bytearray([FUNC_TYPE_TAG])
    out += encode_u32(len(func_type.params))
    for param in func_type.params:
        out.append(param.binary)
    out += encode_u32(len(func_type.results))
    for result in func_type.results:
        out.append(result.binary)
    return bytes(out)


def _encode_limits(limits: Limits) -> bytes:
    if limits.maximum is None:
        return bytes([0x00]) + encode_u32(limits.minimum)
    return bytes([0x01]) + encode_u32(limits.minimum) + encode_u32(limits.maximum)


def _encode_imports(module: Module) -> bytes:
    if not module.imports:
        return b""
    entries = []
    for imp in module.imports:
        entry = bytearray()
        entry += _name(imp.module)
        entry += _name(imp.name)
        if imp.kind == "func":
            entry.append(0x00)
            entry += encode_u32(imp.desc)
        elif imp.kind == "table":
            entry.append(0x01)
            entry.append(FUNCREF)
            entry += _encode_limits(imp.desc.limits)
        elif imp.kind == "memory":
            entry.append(0x02)
            entry += _encode_limits(imp.desc.limits)
        elif imp.kind == "global":
            entry.append(0x03)
            entry.append(imp.desc.valtype.binary)
            entry.append(0x01 if imp.desc.mutable else 0x00)
        else:
            raise ValueError(f"unknown import kind {imp.kind!r}")
        entries.append(bytes(entry))
    return _vec(entries)


def _name(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_u32(len(raw)) + raw


def _encode_func_decls(module: Module) -> bytes:
    if not module.funcs:
        return b""
    return _vec([encode_u32(f.type_index) for f in module.funcs])


def _encode_tables(module: Module) -> bytes:
    if not module.tables:
        return b""
    return _vec(
        [bytes([FUNCREF]) + _encode_limits(t.limits) for t in module.tables]
    )


def _encode_memories(module: Module) -> bytes:
    if not module.memories:
        return b""
    return _vec([_encode_limits(m.limits) for m in module.memories])


def _encode_globals(module: Module) -> bytes:
    if not module.globals:
        return b""
    entries = []
    for glob in module.globals:
        entry = bytearray([glob.type.valtype.binary, 0x01 if glob.type.mutable else 0x00])
        entry += encode_expr(glob.init)
        entries.append(bytes(entry))
    return _vec(entries)


def _encode_exports(module: Module) -> bytes:
    if not module.exports:
        return b""
    entries = []
    for export in module.exports:
        entry = bytearray(_name(export.name))
        entry.append(_EXPORT_KIND[export.kind])
        entry += encode_u32(export.index)
        entries.append(bytes(entry))
    return _vec(entries)


def _encode_elements(module: Module) -> bytes:
    if not module.elements:
        return b""
    entries = []
    for element in module.elements:
        entry = bytearray(encode_u32(element.table_index))
        entry += encode_expr(element.offset)
        entry += encode_u32(len(element.func_indices))
        for func_index in element.func_indices:
            entry += encode_u32(func_index)
        entries.append(bytes(entry))
    return _vec(entries)


def _encode_code(module: Module) -> bytes:
    if not module.funcs:
        return b""
    entries = []
    for func in module.funcs:
        body = bytearray()
        runs = _local_runs(func.locals)
        body += encode_u32(len(runs))
        for count, valtype in runs:
            body += encode_u32(count)
            body.append(valtype.binary)
        body += encode_expr(func.body)
        entries.append(encode_u32(len(body)) + bytes(body))
    return _vec(entries)


def _local_runs(locals_: List[ValType]) -> List[tuple[int, ValType]]:
    runs: List[tuple[int, ValType]] = []
    for valtype in locals_:
        if runs and runs[-1][1] == valtype:
            runs[-1] = (runs[-1][0] + 1, valtype)
        else:
            runs.append((1, valtype))
    return runs


def _encode_data(module: Module) -> bytes:
    if not module.data:
        return b""
    entries = []
    for segment in module.data:
        entry = bytearray(encode_u32(segment.memory_index))
        entry += encode_expr(segment.offset)
        entry += encode_u32(len(segment.data))
        entry += segment.data
        entries.append(bytes(entry))
    return _vec(entries)


def _encode_block_type(result: object) -> bytes:
    if result is None:
        return bytes([0x40])
    if isinstance(result, ValType):
        return bytes([result.binary])
    raise ValueError(f"unsupported block type {result!r}")


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


def _signed64(value: int) -> int:
    value &= 0xFFFFFFFFFFFFFFFF
    return value - (1 << 64) if value >= (1 << 63) else value
