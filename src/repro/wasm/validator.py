"""Module validation: the spec's type-checking algorithm.

Implements the standard validation algorithm (value stack + control
frame stack, with stack-polymorphic ``unreachable`` handling) for every
function body, plus module-level checks: index spaces, constant
expressions, single-memory/single-table MVP limits, export uniqueness,
alignment bounds on memory instructions, and mutability rules.

Raises :class:`~repro.wasm.errors.ValidationError` with the function
and instruction position on failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.wasm import opcodes
from repro.wasm.coverage import COVERAGE as _COVERAGE
from repro.wasm.errors import ValidationError
from repro.wasm.instructions import Instr
from repro.wasm.module import Function, Module
from repro.wasm.types import FuncType, ValType

#: The bottom/polymorphic type used while type-checking unreachable code.
UNKNOWN = "unknown"

StackType = Union[ValType, str]


@dataclass
class _Frame:
    opcode: str  # 'func' | 'block' | 'loop' | 'if' | 'else'
    start_types: List[ValType]
    end_types: List[ValType]
    height: int
    unreachable: bool = False

    @property
    def label_types(self) -> List[ValType]:
        """Types expected by a branch to this frame's label."""
        return self.start_types if self.opcode == "loop" else self.end_types


class _BodyValidator:
    """Validates one function body."""

    def __init__(self, module: Module, func_type: FuncType, locals_: List[ValType], where: str):
        self.module = module
        self.where = where
        self.locals = list(func_type.params) + list(locals_)
        self.vals: List[StackType] = []
        self.ctrls: List[_Frame] = []
        self._push_frame("func", [], list(func_type.results))

    # -- stack primitives ------------------------------------------------
    def fail(self, message: str, position: int = -1) -> None:
        suffix = f" at instruction {position}" if position >= 0 else ""
        raise ValidationError(f"{self.where}{suffix}: {message}")

    def _push_val(self, valtype: StackType) -> None:
        self.vals.append(valtype)

    def _pop_val(self, expect: Optional[StackType] = None) -> StackType:
        frame = self.ctrls[-1]
        if len(self.vals) == frame.height:
            if frame.unreachable:
                return expect if expect is not None else UNKNOWN
            self.fail("value stack underflow")
        actual = self.vals.pop()
        if expect is not None and actual != UNKNOWN and actual != expect:
            self.fail(f"expected {expect}, found {actual}")
        return actual

    def _push_vals(self, types: List[ValType]) -> None:
        for valtype in types:
            self._push_val(valtype)

    def _pop_vals(self, types: List[ValType]) -> None:
        for valtype in reversed(types):
            self._pop_val(valtype)

    # -- control frames ---------------------------------------------------
    def _push_frame(self, opcode: str, start: List[ValType], end: List[ValType]) -> None:
        self.ctrls.append(_Frame(opcode, start, end, len(self.vals)))
        self._push_vals(start)

    def _pop_frame(self) -> _Frame:
        if not self.ctrls:
            self.fail("control stack underflow")
        frame = self.ctrls[-1]
        self._pop_vals(frame.end_types)
        if len(self.vals) != frame.height:
            self.fail("values remain on stack at end of block")
        self.ctrls.pop()
        return frame

    def _set_unreachable(self) -> None:
        frame = self.ctrls[-1]
        del self.vals[frame.height :]
        frame.unreachable = True

    def _label(self, depth: int) -> _Frame:
        if depth >= len(self.ctrls):
            self.fail(f"branch depth {depth} exceeds nesting {len(self.ctrls)}")
        return self.ctrls[len(self.ctrls) - 1 - depth]

    # -- main loop ----------------------------------------------------------
    def run(self, body: List[Instr]) -> None:
        if _COVERAGE.enabled:
            self._run_traced(body)
            return
        for position, ins in enumerate(body):
            try:
                self._check(ins)
            except ValidationError:
                raise
            except Exception as exc:  # defensive: annotate position
                self.fail(f"{type(exc).__name__}: {exc}", position)
        self._finish()

    def _run_traced(self, body: List[Instr]) -> None:
        """The body loop with instruction-edge recording.

        Same checks as :meth:`run`, plus ``(prev, current)`` op-pair
        counters; rejected bodies record a terminal ``(prev,
        '^invalid')`` edge so coverage distinguishes *which* sequence a
        malformed body died on.
        """
        record = _COVERAGE.validator
        prev = "^entry"
        try:
            for position, ins in enumerate(body):
                edge = (prev, ins.op)
                record[edge] = record.get(edge, 0) + 1
                prev = ins.op
                try:
                    self._check(ins)
                except ValidationError:
                    raise
                except Exception as exc:  # defensive: annotate position
                    self.fail(f"{type(exc).__name__}: {exc}", position)
            self._finish()
        except ValidationError:
            edge = (prev, "^invalid")
            record[edge] = record.get(edge, 0) + 1
            raise
        edge = (prev, "^exit")
        record[edge] = record.get(edge, 0) + 1

    def _finish(self) -> None:
        """Implicit end of the function body."""
        frame = self._pop_frame()
        if self.ctrls:
            self.fail("unclosed block at end of function")
        if len(self.vals) != 0:
            self.fail("values remain on stack at function end")

    # -- per-instruction ------------------------------------------------------
    def _check(self, ins: Instr) -> None:
        op = ins.op
        info = ins.info
        if info.category in ("const", "compare", "arith", "convert", "load", "store", "memory"):
            self._check_simple(ins, info)
        elif info.category == "parametric":
            self._check_parametric(op)
        elif info.category == "variable":
            self._check_variable(ins)
        else:
            self._check_control(ins)

    def _check_simple(self, ins: Instr, info: opcodes.OpInfo) -> None:
        if info.category in ("load", "store"):
            if self.module.num_memories == 0:
                self.fail(f"{ins.op} with no memory defined")
            align = ins.args[0]
            if (1 << align) > info.access_bytes:
                self.fail(f"{ins.op} alignment 2**{align} exceeds access width")
        if info.category == "memory" and self.module.num_memories == 0:
            self.fail(f"{ins.op} with no memory defined")
        self._pop_vals([ValType(p) for p in info.params])
        self._push_vals([ValType(r) for r in info.results])

    def _check_parametric(self, op: str) -> None:
        if op == "drop":
            self._pop_val()
        elif op == "select":
            self._pop_val(ValType.I32)
            first = self._pop_val()
            second = self._pop_val(first if first != UNKNOWN else None)
            self._push_val(second if first == UNKNOWN else first)

    def _check_variable(self, ins: Instr) -> None:
        op = ins.op
        index = ins.args[0]
        if op.startswith("local."):
            if index >= len(self.locals):
                self.fail(f"local index {index} out of range")
            valtype = self.locals[index]
            if op == "local.get":
                self._push_val(valtype)
            elif op == "local.set":
                self._pop_val(valtype)
            else:  # local.tee
                self._pop_val(valtype)
                self._push_val(valtype)
        else:
            if index >= self.module.num_globals:
                self.fail(f"global index {index} out of range")
            gtype = self.module.global_type(index)
            if op == "global.get":
                self._push_val(gtype.valtype)
            else:
                if not gtype.mutable:
                    self.fail(f"global.set on immutable global {index}")
                self._pop_val(gtype.valtype)

    def _check_control(self, ins: Instr) -> None:
        op = ins.op
        if op == "nop":
            return
        if op == "unreachable":
            self._set_unreachable()
        elif op in ("block", "loop"):
            result = ins.args[0]
            end = [result] if result is not None else []
            self._push_frame(op, [], end)
        elif op == "if":
            self._pop_val(ValType.I32)
            result = ins.args[0]
            end = [result] if result is not None else []
            self._push_frame("if", [], end)
        elif op == "else":
            frame = self.ctrls[-1]
            if frame.opcode != "if":
                self.fail("else without matching if")
            popped = self._pop_frame()
            self._push_frame("else", [], popped.end_types)
        elif op == "end":
            frame = self._pop_frame()
            if frame.opcode == "func":
                self.fail("end beyond function body")
            self._push_vals(frame.end_types)
        elif op == "br":
            frame = self._label(ins.args[0])
            self._pop_vals(frame.label_types)
            self._set_unreachable()
        elif op == "br_if":
            self._pop_val(ValType.I32)
            frame = self._label(ins.args[0])
            self._pop_vals(frame.label_types)
            self._push_vals(frame.label_types)
        elif op == "br_table":
            labels, default = ins.args
            self._pop_val(ValType.I32)
            default_types = self._label(default).label_types
            for label in labels:
                types = self._label(label).label_types
                if types != default_types:
                    self.fail("br_table labels have mismatched types")
            self._pop_vals(default_types)
            self._set_unreachable()
        elif op == "return":
            self._pop_vals(self.ctrls[0].end_types)
            self._set_unreachable()
        elif op == "call":
            func_type = self.module.func_type(ins.args[0])
            self._pop_vals(list(func_type.params))
            self._push_vals(list(func_type.results))
        elif op == "call_indirect":
            type_index, table_index = ins.args
            if table_index >= self.module.num_tables:
                self.fail("call_indirect with no table defined")
            func_type = self.module.type_at(type_index)
            self._pop_val(ValType.I32)
            self._pop_vals(list(func_type.params))
            self._push_vals(list(func_type.results))
        else:  # pragma: no cover - closed set
            self.fail(f"unhandled control instruction {op}")


# ----------------------------------------------------------------------
# Module-level validation
# ----------------------------------------------------------------------
def validate_module(module: Module) -> None:
    """Validate ``module``; raises ValidationError on the first problem."""
    _validate_structure(module)
    for index, func in enumerate(module.funcs):
        func_type = module.type_at(func.type_index)
        where = f"func[{module.num_imported_funcs + index}]" + (
            f" ({func.name})" if func.name else ""
        )
        _BodyValidator(module, func_type, func.locals, where).run(func.body)


def _validate_structure(module: Module) -> None:
    if module.num_memories > 1:
        raise ValidationError("MVP allows at most one memory")
    if module.num_tables > 1:
        raise ValidationError("MVP allows at most one table")
    for imp in module.imports:
        if imp.kind == "func":
            module.type_at(imp.desc)
    for func in module.funcs:
        module.type_at(func.type_index)
    for glob in module.globals:
        _check_const_expr(module, glob.init, glob.type.valtype)
    seen_export_names = set()
    for export in module.exports:
        if export.name in seen_export_names:
            raise ValidationError(f"duplicate export name {export.name!r}")
        seen_export_names.add(export.name)
        limit = {
            "func": module.num_funcs,
            "table": module.num_tables,
            "memory": module.num_memories,
            "global": module.num_globals,
        }[export.kind]
        if export.index >= limit:
            raise ValidationError(
                f"export {export.name!r} index {export.index} out of range"
            )
    if module.start is not None:
        start_type = module.func_type(module.start)
        if start_type.params or start_type.results:
            raise ValidationError("start function must have type [] -> []")
    for element in module.elements:
        if element.table_index >= module.num_tables:
            raise ValidationError("element segment table index out of range")
        _check_const_expr(module, element.offset, ValType.I32)
        for func_index in element.func_indices:
            if func_index >= module.num_funcs:
                raise ValidationError(
                    f"element segment function index {func_index} out of range"
                )
    for segment in module.data:
        if segment.memory_index >= module.num_memories:
            raise ValidationError("data segment memory index out of range")
        _check_const_expr(module, segment.offset, ValType.I32)


_CONST_OPS = {
    "i32.const": ValType.I32,
    "i64.const": ValType.I64,
    "f32.const": ValType.F32,
    "f64.const": ValType.F64,
}


def _check_const_expr(module: Module, expr: List[Instr], expect: ValType) -> None:
    if len(expr) != 1:
        raise ValidationError("constant expression must be a single instruction")
    ins = expr[0]
    if ins.op in _CONST_OPS:
        if _CONST_OPS[ins.op] != expect:
            raise ValidationError(
                f"constant expression type {_CONST_OPS[ins.op]} != {expect}"
            )
        return
    if ins.op == "global.get":
        index = ins.args[0]
        imported = module.imported("global")
        if index >= len(imported):
            raise ValidationError(
                "constant global.get must reference an imported global"
            )
        gtype = imported[index].desc
        if gtype.mutable:
            raise ValidationError("constant global.get must be immutable")
        if gtype.valtype != expect:
            raise ValidationError("constant global.get type mismatch")
        return
    raise ValidationError(f"{ins.op} not allowed in constant expression")
