"""WebAssembly type structures.

The MVP has exactly four value types (§2.1 of the paper): 32- and 64-bit
integers and floats.  Types carry their binary encodings so the encoder
and decoder share a single source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.wasm.errors import DecodeError


class ValType(enum.Enum):
    """The four WebAssembly value types."""

    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"

    @property
    def binary(self) -> int:
        return _VALTYPE_TO_BYTE[self]

    @classmethod
    def from_binary(cls, byte: int) -> "ValType":
        try:
            return _BYTE_TO_VALTYPE[byte]
        except KeyError:
            raise DecodeError(f"invalid value type byte {byte:#x}") from None

    @property
    def is_integer(self) -> bool:
        return self in (ValType.I32, ValType.I64)

    @property
    def is_float(self) -> bool:
        return self in (ValType.F32, ValType.F64)

    @property
    def bit_width(self) -> int:
        return 32 if self in (ValType.I32, ValType.F32) else 64

    def __repr__(self) -> str:
        return self.value

    def __str__(self) -> str:
        return self.value


_VALTYPE_TO_BYTE = {
    ValType.I32: 0x7F,
    ValType.I64: 0x7E,
    ValType.F32: 0x7D,
    ValType.F64: 0x7C,
}
_BYTE_TO_VALTYPE = {byte: vt for vt, byte in _VALTYPE_TO_BYTE.items()}

#: Binary tag introducing a function type.
FUNC_TYPE_TAG = 0x60

#: Element type for MVP tables (funcref).
FUNCREF = 0x70


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter and result types."""

    params: Tuple[ValType, ...] = ()
    results: Tuple[ValType, ...] = ()

    def __str__(self) -> str:
        p = " ".join(t.value for t in self.params) or "ε"
        r = " ".join(t.value for t in self.results) or "ε"
        return f"[{p}] -> [{r}]"


@dataclass(frozen=True)
class Limits:
    """Min/max limits for memories and tables (units: pages / entries)."""

    minimum: int
    maximum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ValueError(f"limits minimum must be >= 0, got {self.minimum}")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ValueError(
                f"limits maximum {self.maximum} below minimum {self.minimum}"
            )


@dataclass(frozen=True)
class MemoryType:
    """A linear memory: limits in 64 KiB Wasm pages."""

    limits: Limits


@dataclass(frozen=True)
class TableType:
    """A funcref table."""

    limits: Limits


@dataclass(frozen=True)
class GlobalType:
    """A global variable's type and mutability."""

    valtype: ValType
    mutable: bool = False
