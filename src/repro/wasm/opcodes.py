"""The WebAssembly MVP opcode table (plus sign-extension operators).

One table drives everything: binary encoding/decoding, validation
(stack signatures), interpretation and instruction selection.  Each
entry records the opcode byte, the immediate kind, the stack signature
for simple (non-polymorphic) instructions, a category, and — for memory
instructions — the access width in bytes.

Immediate kinds:

=============  ========================================================
``''``         no immediate
``'u32'``      one LEB128 u32 (indices: local, global, func, label)
``'memarg'``   alignment + offset pair (memory instructions)
``'i32'``      signed LEB128 32-bit literal
``'i64'``      signed LEB128 64-bit literal
``'f32'``      4-byte IEEE literal
``'f64'``      8-byte IEEE literal
``'block'``    block type (empty / one value type)
``'br_table'`` label vector + default label
``'call_indirect'`` type index + table index
``'memidx'``   reserved 0x00 byte (memory.size / memory.grow)
``'memcopy'``  two reserved 0x00 bytes (memory.copy dst+src indices)
``'memfill'``  one reserved 0x00 byte (memory.fill memory index)
=============  ========================================================

Multi-byte opcodes (the 0xFC "miscellaneous" prefix) are stored as
``0xFC00 | sub_opcode`` in :attr:`OpInfo.code`; the encoder/decoder
translate to/from the prefix byte + LEB128 sub-opcode wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

I32, I64, F32, F64 = "i32", "i64", "f32", "f64"


@dataclass(frozen=True)
class OpInfo:
    """Static description of one instruction."""

    name: str
    code: int
    imm: str
    params: Tuple[str, ...]
    results: Tuple[str, ...]
    category: str
    #: Bytes accessed for loads/stores (0 otherwise).
    access_bytes: int = 0
    #: For sub-width loads: 's' or 'u'; '' elsewhere.
    sign: str = ""


_TABLE: list[OpInfo] = []


def _op(name, code, imm="", params=(), results=(), category="arith", access=0, sign=""):
    info = OpInfo(
        name=name,
        code=code,
        imm=imm,
        params=tuple(params),
        results=tuple(results),
        category=category,
        access_bytes=access,
        sign=sign,
    )
    _TABLE.append(info)
    return info


# -- control ---------------------------------------------------------------
_op("unreachable", 0x00, category="control")
_op("nop", 0x01, category="control")
_op("block", 0x02, imm="block", category="control")
_op("loop", 0x03, imm="block", category="control")
_op("if", 0x04, imm="block", category="control")
_op("else", 0x05, category="control")
_op("end", 0x0B, category="control")
_op("br", 0x0C, imm="u32", category="control")
_op("br_if", 0x0D, imm="u32", category="control")
_op("br_table", 0x0E, imm="br_table", category="control")
_op("return", 0x0F, category="control")
_op("call", 0x10, imm="u32", category="control")
_op("call_indirect", 0x11, imm="call_indirect", category="control")

# -- parametric --------------------------------------------------------------
_op("drop", 0x1A, category="parametric")
_op("select", 0x1B, category="parametric")

# -- variable ----------------------------------------------------------------
_op("local.get", 0x20, imm="u32", category="variable")
_op("local.set", 0x21, imm="u32", category="variable")
_op("local.tee", 0x22, imm="u32", category="variable")
_op("global.get", 0x23, imm="u32", category="variable")
_op("global.set", 0x24, imm="u32", category="variable")

# -- memory: loads ------------------------------------------------------------
_op("i32.load", 0x28, "memarg", (I32,), (I32,), "load", 4)
_op("i64.load", 0x29, "memarg", (I32,), (I64,), "load", 8)
_op("f32.load", 0x2A, "memarg", (I32,), (F32,), "load", 4)
_op("f64.load", 0x2B, "memarg", (I32,), (F64,), "load", 8)
_op("i32.load8_s", 0x2C, "memarg", (I32,), (I32,), "load", 1, "s")
_op("i32.load8_u", 0x2D, "memarg", (I32,), (I32,), "load", 1, "u")
_op("i32.load16_s", 0x2E, "memarg", (I32,), (I32,), "load", 2, "s")
_op("i32.load16_u", 0x2F, "memarg", (I32,), (I32,), "load", 2, "u")
_op("i64.load8_s", 0x30, "memarg", (I32,), (I64,), "load", 1, "s")
_op("i64.load8_u", 0x31, "memarg", (I32,), (I64,), "load", 1, "u")
_op("i64.load16_s", 0x32, "memarg", (I32,), (I64,), "load", 2, "s")
_op("i64.load16_u", 0x33, "memarg", (I32,), (I64,), "load", 2, "u")
_op("i64.load32_s", 0x34, "memarg", (I32,), (I64,), "load", 4, "s")
_op("i64.load32_u", 0x35, "memarg", (I32,), (I64,), "load", 4, "u")

# -- memory: stores ------------------------------------------------------------
_op("i32.store", 0x36, "memarg", (I32, I32), (), "store", 4)
_op("i64.store", 0x37, "memarg", (I32, I64), (), "store", 8)
_op("f32.store", 0x38, "memarg", (I32, F32), (), "store", 4)
_op("f64.store", 0x39, "memarg", (I32, F64), (), "store", 8)
_op("i32.store8", 0x3A, "memarg", (I32, I32), (), "store", 1)
_op("i32.store16", 0x3B, "memarg", (I32, I32), (), "store", 2)
_op("i64.store8", 0x3C, "memarg", (I32, I64), (), "store", 1)
_op("i64.store16", 0x3D, "memarg", (I32, I64), (), "store", 2)
_op("i64.store32", 0x3E, "memarg", (I32, I64), (), "store", 4)
_op("memory.size", 0x3F, "memidx", (), (I32,), "memory")
_op("memory.grow", 0x40, "memidx", (I32,), (I32,), "memory")

# -- memory: bulk operations (0xFC-prefixed, encoded as 0xFC00 | sub) ----------
# memory.copy carries two reserved memory-index bytes (dst, src) and
# memory.fill one; both take (dest, val_or_src, len) i32 operands.
_op("memory.copy", 0xFC0A, "memcopy", (I32, I32, I32), (), "memory")
_op("memory.fill", 0xFC0B, "memfill", (I32, I32, I32), (), "memory")

# -- constants ------------------------------------------------------------------
_op("i32.const", 0x41, "i32", (), (I32,), "const")
_op("i64.const", 0x42, "i64", (), (I64,), "const")
_op("f32.const", 0x43, "f32", (), (F32,), "const")
_op("f64.const", 0x44, "f64", (), (F64,), "const")

# -- i32 comparisons ---------------------------------------------------------------
_op("i32.eqz", 0x45, "", (I32,), (I32,), "compare")
for _name, _code in [
    ("i32.eq", 0x46), ("i32.ne", 0x47), ("i32.lt_s", 0x48), ("i32.lt_u", 0x49),
    ("i32.gt_s", 0x4A), ("i32.gt_u", 0x4B), ("i32.le_s", 0x4C), ("i32.le_u", 0x4D),
    ("i32.ge_s", 0x4E), ("i32.ge_u", 0x4F),
]:
    _op(_name, _code, "", (I32, I32), (I32,), "compare")

# -- i64 comparisons ---------------------------------------------------------------
_op("i64.eqz", 0x50, "", (I64,), (I32,), "compare")
for _name, _code in [
    ("i64.eq", 0x51), ("i64.ne", 0x52), ("i64.lt_s", 0x53), ("i64.lt_u", 0x54),
    ("i64.gt_s", 0x55), ("i64.gt_u", 0x56), ("i64.le_s", 0x57), ("i64.le_u", 0x58),
    ("i64.ge_s", 0x59), ("i64.ge_u", 0x5A),
]:
    _op(_name, _code, "", (I64, I64), (I32,), "compare")

# -- float comparisons ---------------------------------------------------------------
for _name, _code in [
    ("f32.eq", 0x5B), ("f32.ne", 0x5C), ("f32.lt", 0x5D),
    ("f32.gt", 0x5E), ("f32.le", 0x5F), ("f32.ge", 0x60),
]:
    _op(_name, _code, "", (F32, F32), (I32,), "compare")
for _name, _code in [
    ("f64.eq", 0x61), ("f64.ne", 0x62), ("f64.lt", 0x63),
    ("f64.gt", 0x64), ("f64.le", 0x65), ("f64.ge", 0x66),
]:
    _op(_name, _code, "", (F64, F64), (I32,), "compare")

# -- i32 arithmetic -----------------------------------------------------------------
for _name, _code in [("i32.clz", 0x67), ("i32.ctz", 0x68), ("i32.popcnt", 0x69)]:
    _op(_name, _code, "", (I32,), (I32,), "arith")
for _name, _code in [
    ("i32.add", 0x6A), ("i32.sub", 0x6B), ("i32.mul", 0x6C),
    ("i32.div_s", 0x6D), ("i32.div_u", 0x6E), ("i32.rem_s", 0x6F), ("i32.rem_u", 0x70),
    ("i32.and", 0x71), ("i32.or", 0x72), ("i32.xor", 0x73),
    ("i32.shl", 0x74), ("i32.shr_s", 0x75), ("i32.shr_u", 0x76),
    ("i32.rotl", 0x77), ("i32.rotr", 0x78),
]:
    _op(_name, _code, "", (I32, I32), (I32,), "arith")

# -- i64 arithmetic -----------------------------------------------------------------
for _name, _code in [("i64.clz", 0x79), ("i64.ctz", 0x7A), ("i64.popcnt", 0x7B)]:
    _op(_name, _code, "", (I64,), (I64,), "arith")
for _name, _code in [
    ("i64.add", 0x7C), ("i64.sub", 0x7D), ("i64.mul", 0x7E),
    ("i64.div_s", 0x7F), ("i64.div_u", 0x80), ("i64.rem_s", 0x81), ("i64.rem_u", 0x82),
    ("i64.and", 0x83), ("i64.or", 0x84), ("i64.xor", 0x85),
    ("i64.shl", 0x86), ("i64.shr_s", 0x87), ("i64.shr_u", 0x88),
    ("i64.rotl", 0x89), ("i64.rotr", 0x8A),
]:
    _op(_name, _code, "", (I64, I64), (I64,), "arith")

# -- f32 arithmetic -----------------------------------------------------------------
for _name, _code in [
    ("f32.abs", 0x8B), ("f32.neg", 0x8C), ("f32.ceil", 0x8D), ("f32.floor", 0x8E),
    ("f32.trunc", 0x8F), ("f32.nearest", 0x90), ("f32.sqrt", 0x91),
]:
    _op(_name, _code, "", (F32,), (F32,), "arith")
for _name, _code in [
    ("f32.add", 0x92), ("f32.sub", 0x93), ("f32.mul", 0x94), ("f32.div", 0x95),
    ("f32.min", 0x96), ("f32.max", 0x97), ("f32.copysign", 0x98),
]:
    _op(_name, _code, "", (F32, F32), (F32,), "arith")

# -- f64 arithmetic -----------------------------------------------------------------
for _name, _code in [
    ("f64.abs", 0x99), ("f64.neg", 0x9A), ("f64.ceil", 0x9B), ("f64.floor", 0x9C),
    ("f64.trunc", 0x9D), ("f64.nearest", 0x9E), ("f64.sqrt", 0x9F),
]:
    _op(_name, _code, "", (F64,), (F64,), "arith")
for _name, _code in [
    ("f64.add", 0xA0), ("f64.sub", 0xA1), ("f64.mul", 0xA2), ("f64.div", 0xA3),
    ("f64.min", 0xA4), ("f64.max", 0xA5), ("f64.copysign", 0xA6),
]:
    _op(_name, _code, "", (F64, F64), (F64,), "arith")

# -- conversions ---------------------------------------------------------------------
_op("i32.wrap_i64", 0xA7, "", (I64,), (I32,), "convert")
_op("i32.trunc_f32_s", 0xA8, "", (F32,), (I32,), "convert")
_op("i32.trunc_f32_u", 0xA9, "", (F32,), (I32,), "convert")
_op("i32.trunc_f64_s", 0xAA, "", (F64,), (I32,), "convert")
_op("i32.trunc_f64_u", 0xAB, "", (F64,), (I32,), "convert")
_op("i64.extend_i32_s", 0xAC, "", (I32,), (I64,), "convert")
_op("i64.extend_i32_u", 0xAD, "", (I32,), (I64,), "convert")
_op("i64.trunc_f32_s", 0xAE, "", (F32,), (I64,), "convert")
_op("i64.trunc_f32_u", 0xAF, "", (F32,), (I64,), "convert")
_op("i64.trunc_f64_s", 0xB0, "", (F64,), (I64,), "convert")
_op("i64.trunc_f64_u", 0xB1, "", (F64,), (I64,), "convert")
_op("f32.convert_i32_s", 0xB2, "", (I32,), (F32,), "convert")
_op("f32.convert_i32_u", 0xB3, "", (I32,), (F32,), "convert")
_op("f32.convert_i64_s", 0xB4, "", (I64,), (F32,), "convert")
_op("f32.convert_i64_u", 0xB5, "", (I64,), (F32,), "convert")
_op("f32.demote_f64", 0xB6, "", (F64,), (F32,), "convert")
_op("f64.convert_i32_s", 0xB7, "", (I32,), (F64,), "convert")
_op("f64.convert_i32_u", 0xB8, "", (I32,), (F64,), "convert")
_op("f64.convert_i64_s", 0xB9, "", (I64,), (F64,), "convert")
_op("f64.convert_i64_u", 0xBA, "", (I64,), (F64,), "convert")
_op("f64.promote_f32", 0xBB, "", (F32,), (F64,), "convert")
_op("i32.reinterpret_f32", 0xBC, "", (F32,), (I32,), "convert")
_op("i64.reinterpret_f64", 0xBD, "", (F64,), (I64,), "convert")
_op("f32.reinterpret_i32", 0xBE, "", (I32,), (F32,), "convert")
_op("f64.reinterpret_i64", 0xBF, "", (I64,), (F64,), "convert")

# -- sign-extension operators (post-MVP, widely supported) ------------------------------
_op("i32.extend8_s", 0xC0, "", (I32,), (I32,), "convert")
_op("i32.extend16_s", 0xC1, "", (I32,), (I32,), "convert")
_op("i64.extend8_s", 0xC2, "", (I64,), (I64,), "convert")
_op("i64.extend16_s", 0xC3, "", (I64,), (I64,), "convert")
_op("i64.extend32_s", 0xC4, "", (I64,), (I64,), "convert")


#: name -> OpInfo
BY_NAME: dict[str, OpInfo] = {info.name: info for info in _TABLE}
#: opcode byte -> OpInfo
BY_CODE: dict[int, OpInfo] = {info.code: info for info in _TABLE}

if len(BY_NAME) != len(_TABLE) or len(BY_CODE) != len(_TABLE):  # pragma: no cover
    raise AssertionError("duplicate opcode table entries")


def info(name: str) -> OpInfo:
    """Look up an instruction by name, raising KeyError with context."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown instruction {name!r}") from None
