"""Structured module and function builders.

:class:`ModuleBuilder` assembles a :class:`~repro.wasm.module.Module`
piecewise; :class:`FunctionBuilder` appends instructions with structured
control-flow helpers (``block``/``loop``/``if`` as context managers)
that compute branch label depths automatically:

    mb = ModuleBuilder("demo")
    fb = mb.func("add1", params=[ValType.I32], results=[ValType.I32])
    fb.emit("local.get", 0)
    fb.emit("i32.const", 1)
    fb.emit("i32.add")
    mb.export_func(fb)

    with fb.loop() as again:
        ...
        fb.br_if(again)       # depth computed from the control stack

The builder is the foundation the workload DSL (:mod:`repro.wasm.dsl`)
compiles into.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.wasm.instructions import Instr
from repro.wasm.module import (
    DataSegment,
    ElementSegment,
    Export,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.types import (
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)


@dataclass
class Label:
    """A branch target created by ``block()`` or ``loop()``."""

    builder: "FunctionBuilder"
    kind: str  # 'block' | 'loop' | 'if'
    position: int  # index in the builder's control stack at creation


class BuilderError(RuntimeError):
    """Misuse of the builder API (unbalanced control flow, bad label…)."""


class FunctionBuilder:
    """Accumulates the body of one function."""

    def __init__(
        self,
        module_builder: "ModuleBuilder",
        name: str,
        params: Sequence[ValType],
        results: Sequence[ValType],
    ) -> None:
        self.module_builder = module_builder
        self.name = name
        self.params = list(params)
        self.results = list(results)
        self.locals: List[ValType] = []
        self.body: List[Instr] = []
        self._control: List[Label] = []
        #: Absolute function index, assigned when registered.
        self.index: Optional[int] = None

    # -- locals ------------------------------------------------------------
    def add_local(self, valtype: ValType) -> int:
        """Declare a local; returns its index (params occupy the front)."""
        self.locals.append(valtype)
        return len(self.params) + len(self.locals) - 1

    # -- raw emission --------------------------------------------------------
    def emit(self, op: str, *args) -> "FunctionBuilder":
        self.body.append(Instr(op, tuple(args)))
        return self

    # -- structured control ----------------------------------------------------
    @contextmanager
    def block(self, result: Optional[ValType] = None) -> Iterator[Label]:
        label = Label(self, "block", len(self._control))
        self._control.append(label)
        self.emit("block", result)
        try:
            yield label
        finally:
            self._end(label)

    @contextmanager
    def loop(self, result: Optional[ValType] = None) -> Iterator[Label]:
        label = Label(self, "loop", len(self._control))
        self._control.append(label)
        self.emit("loop", result)
        try:
            yield label
        finally:
            self._end(label)

    @contextmanager
    def if_(self, result: Optional[ValType] = None) -> Iterator[Label]:
        label = Label(self, "if", len(self._control))
        self._control.append(label)
        self.emit("if", result)
        try:
            yield label
        finally:
            self._end(label)

    def else_(self) -> None:
        if not self._control or self._control[-1].kind != "if":
            raise BuilderError("else_() outside an if block")
        self.emit("else")

    def _end(self, label: Label) -> None:
        if not self._control or self._control[-1] is not label:
            raise BuilderError("control structure closed out of order")
        self._control.pop()
        self.emit("end")

    def depth_of(self, label: Label) -> int:
        if label.builder is not self:
            raise BuilderError("label belongs to another function")
        try:
            index = self._control.index(label)
        except ValueError:
            raise BuilderError("branch to a label that is already closed") from None
        return len(self._control) - 1 - index

    def br(self, label: Label) -> "FunctionBuilder":
        return self.emit("br", self.depth_of(label))

    def br_if(self, label: Label) -> "FunctionBuilder":
        return self.emit("br_if", self.depth_of(label))

    # -- registration ------------------------------------------------------------
    def func_type(self) -> FuncType:
        return FuncType(tuple(self.params), tuple(self.results))


class ModuleBuilder:
    """Assembles a Module."""

    def __init__(self, name: str = "") -> None:
        self.module = Module(name=name)
        self._pending: List[FunctionBuilder] = []

    # -- imports (must be added before definitions are indexed) ----------------
    def import_func(
        self, module: str, name: str, params: Sequence[ValType], results: Sequence[ValType]
    ) -> int:
        if self._pending:
            raise BuilderError("imports must be declared before functions")
        type_index = self.module.add_type(FuncType(tuple(params), tuple(results)))
        self.module.imports.append(Import(module, name, "func", type_index))
        return self.module.num_imported_funcs - 1

    # -- definitions ----------------------------------------------------------
    def func(
        self,
        name: str,
        params: Sequence[ValType] = (),
        results: Sequence[ValType] = (),
        export: bool = False,
    ) -> FunctionBuilder:
        fb = FunctionBuilder(self, name, params, results)
        fb.index = self.module.num_imported_funcs + len(self._pending)
        self._pending.append(fb)
        if export:
            self.module.exports.append(Export(name, "func", fb.index))
        return fb

    def add_memory(
        self,
        min_pages: int,
        max_pages: Optional[int] = None,
        export: Optional[str] = "memory",
    ) -> int:
        self.module.memories.append(MemoryType(Limits(min_pages, max_pages)))
        index = self.module.num_memories - 1
        if export:
            self.module.exports.append(Export(export, "memory", index))
        return index

    def add_table(self, min_entries: int, max_entries: Optional[int] = None) -> int:
        self.module.tables.append(TableType(Limits(min_entries, max_entries)))
        return self.module.num_tables - 1

    def add_global(
        self, valtype: ValType, init_value, mutable: bool = True, name: str = ""
    ) -> int:
        const_op = f"{valtype.value}.const"
        glob = Global(GlobalType(valtype, mutable), [Instr(const_op, (init_value,))], name)
        self.module.globals.append(glob)
        return self.module.num_globals - 1

    def add_element(self, table_index: int, offset: int, func_indices: Sequence[int]) -> None:
        self.module.elements.append(
            ElementSegment(table_index, [Instr("i32.const", (offset,))], list(func_indices))
        )

    def add_data(self, memory_index: int, offset: int, data: bytes) -> None:
        self.module.data.append(
            DataSegment(memory_index, [Instr("i32.const", (offset,))], data)
        )

    def set_start(self, fb: FunctionBuilder) -> None:
        self.module.start = fb.index

    def export_func(self, fb: FunctionBuilder, name: Optional[str] = None) -> None:
        self.module.exports.append(Export(name or fb.name, "func", fb.index))

    # -- finalisation -------------------------------------------------------------
    def build(self) -> Module:
        """Materialise the module (idempotent)."""
        for fb in self._pending:
            if getattr(fb, "_registered", False):
                continue
            if fb._control:
                raise BuilderError(f"function {fb.name!r} has unclosed control flow")
            type_index = self.module.add_type(fb.func_type())
            self.module.funcs.append(
                Function(
                    type_index=type_index,
                    locals=list(fb.locals),
                    body=list(fb.body),
                    name=fb.name,
                )
            )
            fb._registered = True
        return self.module
