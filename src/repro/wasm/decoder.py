"""Decode WebAssembly binaries into :class:`~repro.wasm.module.Module`.

Strict where it matters for the test suite: section ordering, size
framing, LEB128 bounds, value-type bytes and opcode bytes are all
checked, raising :class:`~repro.wasm.errors.DecodeError` with positions.
Custom sections (id 0) are skipped.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.wasm import opcodes
from repro.wasm.coverage import COVERAGE as _COVERAGE
from repro.wasm.encoder import MAGIC, VERSION
from repro.wasm.errors import DecodeError
from repro.wasm.instructions import Instr
from repro.wasm.leb128 import decode_signed, decode_unsigned
from repro.wasm.module import (
    DataSegment,
    ElementSegment,
    Export,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.types import (
    FUNC_TYPE_TAG,
    FUNCREF,
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)

_EXPORT_KIND = {0: "func", 1: "table", 2: "memory", 3: "global"}


class _Reader:
    """A bounded cursor over the binary."""

    def __init__(self, data: bytes, offset: int = 0, end: int | None = None) -> None:
        self.data = data
        self.offset = offset
        if end is None:
            end = len(data)
        elif end > len(data):
            # A section/entry header may claim more bytes than the
            # binary holds; an unclamped end would turn the byte()
            # bounds check into an IndexError past len(data).
            raise DecodeError(
                f"declared size extends {end - len(data)} bytes past "
                "end of input"
            )
        self.end = end

    @property
    def remaining(self) -> int:
        return self.end - self.offset

    def byte(self) -> int:
        if self.offset >= self.end:
            raise DecodeError(f"unexpected end of input at offset {self.offset}")
        value = self.data[self.offset]
        self.offset += 1
        return value

    def raw(self, count: int) -> bytes:
        if self.offset + count > self.end:
            raise DecodeError(f"unexpected end of input at offset {self.offset}")
        value = self.data[self.offset : self.offset + count]
        self.offset += count
        return value

    def u32(self) -> int:
        value, self.offset = decode_unsigned(self.data[: self.end], self.offset, 32)
        return value

    def s32(self) -> int:
        value, self.offset = decode_signed(self.data[: self.end], self.offset, 32)
        return value

    def s64(self) -> int:
        value, self.offset = decode_signed(self.data[: self.end], self.offset, 64)
        return value

    def f32(self) -> float:
        return struct.unpack("<f", self.raw(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def name(self) -> str:
        length = self.u32()
        try:
            return self.raw(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 name at offset {self.offset}") from exc

    def valtype(self) -> ValType:
        return ValType.from_binary(self.byte())

    def limits(self) -> Limits:
        flag = self.byte()
        if flag == 0x00:
            return Limits(self.u32())
        if flag == 0x01:
            minimum = self.u32()
            maximum = self.u32()
            if maximum < minimum:
                raise DecodeError("limits maximum below minimum")
            return Limits(minimum, maximum)
        raise DecodeError(f"invalid limits flag {flag:#x}")


def decode_module(data: bytes) -> Module:
    """Parse binary ``data`` into a Module."""
    if data[:4] != MAGIC:
        raise DecodeError("bad magic number (not a wasm binary)")
    if data[4:8] != VERSION:
        raise DecodeError(f"unsupported wasm version {data[4:8]!r}")
    reader = _Reader(data, offset=8)
    module = Module()
    last_section = 0
    while reader.remaining:
        section_id = reader.byte()
        size = reader.u32()
        body = _Reader(reader.data, reader.offset, reader.offset + size)
        reader.offset += size
        if reader.offset > reader.end:
            raise DecodeError(f"section {section_id} overruns the binary")
        if section_id == 0:
            continue  # custom section: skipped
        if section_id <= last_section:
            raise DecodeError(f"section {section_id} out of order")
        last_section = section_id
        _SECTION_DECODERS.get(section_id, _unknown_section(section_id))(body, module)
        if body.remaining:
            raise DecodeError(f"trailing bytes in section {section_id}")
    if any(True for _ in module.funcs if _.body is None):  # pragma: no cover
        raise DecodeError("function without code entry")
    return module


def _unknown_section(section_id: int):
    def fail(body: _Reader, module: Module) -> None:
        raise DecodeError(f"unknown section id {section_id}")

    return fail


# ----------------------------------------------------------------------
# Per-section decoders
# ----------------------------------------------------------------------
def _decode_types(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        tag = body.byte()
        if tag != FUNC_TYPE_TAG:
            raise DecodeError(f"expected func type tag 0x60, got {tag:#x}")
        params = tuple(body.valtype() for _ in range(body.u32()))
        results = tuple(body.valtype() for _ in range(body.u32()))
        module.types.append(FuncType(params, results))


def _decode_imports(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        mod_name = body.name()
        item_name = body.name()
        kind_byte = body.byte()
        if kind_byte == 0x00:
            desc: object = body.u32()
            kind = "func"
        elif kind_byte == 0x01:
            if body.byte() != FUNCREF:
                raise DecodeError("table import with non-funcref element type")
            desc = TableType(body.limits())
            kind = "table"
        elif kind_byte == 0x02:
            desc = MemoryType(body.limits())
            kind = "memory"
        elif kind_byte == 0x03:
            valtype = body.valtype()
            mutable = body.byte() == 0x01
            desc = GlobalType(valtype, mutable)
            kind = "global"
        else:
            raise DecodeError(f"invalid import kind {kind_byte:#x}")
        module.imports.append(Import(mod_name, item_name, kind, desc))


def _decode_func_decls(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        module.funcs.append(Function(type_index=body.u32(), body=None))  # type: ignore[arg-type]


def _decode_tables(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        if body.byte() != FUNCREF:
            raise DecodeError("table with non-funcref element type")
        module.tables.append(TableType(body.limits()))


def _decode_memories(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        module.memories.append(MemoryType(body.limits()))


def _decode_globals(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        valtype = body.valtype()
        mutable = body.byte() == 0x01
        init = _decode_expr(body)
        module.globals.append(Global(GlobalType(valtype, mutable), init))


def _decode_exports(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        name = body.name()
        kind_byte = body.byte()
        if kind_byte not in _EXPORT_KIND:
            raise DecodeError(f"invalid export kind {kind_byte:#x}")
        module.exports.append(Export(name, _EXPORT_KIND[kind_byte], body.u32()))


def _decode_start(body: _Reader, module: Module) -> None:
    module.start = body.u32()


def _decode_elements(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        table_index = body.u32()
        offset = _decode_expr(body)
        func_indices = [body.u32() for _ in range(body.u32())]
        module.elements.append(ElementSegment(table_index, offset, func_indices))


def _decode_code(body: _Reader, module: Module) -> None:
    count = body.u32()
    if count != len(module.funcs):
        raise DecodeError(
            f"code section has {count} entries but {len(module.funcs)} declared"
        )
    for func in module.funcs:
        size = body.u32()
        entry = _Reader(body.data, body.offset, body.offset + size)
        body.offset += size
        locals_: List[ValType] = []
        for _ in range(entry.u32()):
            run = entry.u32()
            valtype = entry.valtype()
            if len(locals_) + run > 50_000:
                raise DecodeError("too many locals")
            locals_.extend([valtype] * run)
        func.locals = locals_
        func.body = _decode_expr(entry)
        if entry.remaining:
            raise DecodeError("trailing bytes in code entry")


def _decode_data(body: _Reader, module: Module) -> None:
    for _ in range(body.u32()):
        memory_index = body.u32()
        offset = _decode_expr(body)
        length = body.u32()
        module.data.append(DataSegment(memory_index, offset, body.raw(length)))


_SECTION_DECODERS = {
    1: _decode_types,
    2: _decode_imports,
    3: _decode_func_decls,
    4: _decode_tables,
    5: _decode_memories,
    6: _decode_globals,
    7: _decode_exports,
    8: _decode_start,
    9: _decode_elements,
    10: _decode_code,
    11: _decode_data,
}


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def _decode_expr(body: _Reader) -> List[Instr]:
    """Decode instructions until the matching top-level ``end``."""
    if _COVERAGE.enabled:
        return _decode_expr_traced(body)
    instrs: List[Instr] = []
    depth = 0
    while True:
        code = body.byte()
        if code == 0xFC:
            # Miscellaneous prefix: the real opcode is an LEB128
            # sub-opcode, stored in the table as 0xFC00 | sub.
            code = 0xFC00 | body.u32()
        try:
            info = opcodes.BY_CODE[code]
        except KeyError:
            raise DecodeError(
                f"unknown opcode {code:#04x} at offset {body.offset - 1}"
            ) from None
        if info.name == "end":
            if depth == 0:
                return instrs
            depth -= 1
            instrs.append(Instr("end"))
            continue
        if info.name in ("block", "loop", "if"):
            depth += 1
        instrs.append(_decode_instr(info, body))


def _decode_expr_traced(body: _Reader) -> List[Instr]:
    """The expression loop with opcode-edge recording.

    Must stay semantically identical to :func:`_decode_expr` (it is the
    same loop plus ``(prev, current)`` opcode-pair counters); rejected
    bodies record a terminal ``(prev, '^error')`` edge so coverage also
    distinguishes *where* malformed inputs die.
    """
    record = _COVERAGE.decoder
    prev = "^entry"
    instrs: List[Instr] = []
    depth = 0
    try:
        while True:
            code = body.byte()
            if code == 0xFC:
                code = 0xFC00 | body.u32()
            try:
                info = opcodes.BY_CODE[code]
            except KeyError:
                raise DecodeError(
                    f"unknown opcode {code:#04x} at offset {body.offset - 1}"
                ) from None
            edge = (prev, info.name)
            record[edge] = record.get(edge, 0) + 1
            prev = info.name
            if info.name == "end":
                if depth == 0:
                    edge = (prev, "^exit")
                    record[edge] = record.get(edge, 0) + 1
                    return instrs
                depth -= 1
                instrs.append(Instr("end"))
                continue
            if info.name in ("block", "loop", "if"):
                depth += 1
            instrs.append(_decode_instr(info, body))
    except DecodeError:
        edge = (prev, "^error")
        record[edge] = record.get(edge, 0) + 1
        raise


def _decode_instr(info: opcodes.OpInfo, body: _Reader) -> Instr:
    imm = info.imm
    if imm == "":
        return Instr(info.name)
    if imm == "u32":
        return Instr(info.name, (body.u32(),))
    if imm == "memarg":
        return Instr(info.name, (body.u32(), body.u32()))
    if imm == "i32":
        return Instr(info.name, (body.s32(),))
    if imm == "i64":
        return Instr(info.name, (body.s64(),))
    if imm == "f32":
        return Instr(info.name, (body.f32(),))
    if imm == "f64":
        return Instr(info.name, (body.f64(),))
    if imm == "block":
        tag = body.byte()
        block_type = None if tag == 0x40 else ValType.from_binary(tag)
        return Instr(info.name, (block_type,))
    if imm == "br_table":
        labels = tuple(body.u32() for _ in range(body.u32()))
        return Instr(info.name, (labels, body.u32()))
    if imm == "call_indirect":
        return Instr(info.name, (body.u32(), body.u32()))
    if imm == "memidx":
        if body.byte() != 0x00:
            raise DecodeError("non-zero memory index reserved byte")
        return Instr(info.name)
    if imm == "memcopy":
        if body.byte() != 0x00 or body.byte() != 0x00:
            raise DecodeError("non-zero memory index reserved byte")
        return Instr(info.name)
    if imm == "memfill":
        if body.byte() != 0x00:
            raise DecodeError("non-zero memory index reserved byte")
        return Instr(info.name)
    raise AssertionError(f"unhandled immediate kind {imm!r}")  # pragma: no cover
