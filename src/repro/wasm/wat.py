"""WAT-style text rendering of modules (a debugging aid).

Produces readable, roughly WAT-shaped text — folded enough to diff and
eyeball, not intended to be byte-identical with reference tooling.
"""

from __future__ import annotations

from typing import List

from repro.wasm.instructions import Instr
from repro.wasm.module import Module
from repro.wasm.types import FuncType


def _render_functype(func_type: FuncType) -> str:
    parts = []
    if func_type.params:
        parts.append("(param " + " ".join(t.value for t in func_type.params) + ")")
    if func_type.results:
        parts.append("(result " + " ".join(t.value for t in func_type.results) + ")")
    return " ".join(parts)


def _render_instr(ins: Instr) -> str:
    if ins.op in ("block", "loop", "if"):
        result = ins.args[0]
        suffix = f" (result {result.value})" if result is not None else ""
        return ins.op + suffix
    if ins.op == "br_table":
        labels, default = ins.args
        return "br_table " + " ".join(str(l) for l in (*labels, default))
    if ins.op == "call_indirect":
        type_index, table_index = ins.args
        return f"call_indirect (type {type_index})"
    if ins.info.imm == "memarg":
        align, offset = ins.args
        parts = [ins.op]
        if offset:
            parts.append(f"offset={offset}")
        parts.append(f"align={1 << align}")
        return " ".join(parts)
    return str(ins)


def body_to_wat(body: List[Instr], indent: int = 4) -> str:
    """Render a body with control-structure indentation."""
    lines = []
    depth = 0
    for ins in body:
        if ins.op in ("end", "else"):
            depth = max(0, depth - 1)
        lines.append(" " * (indent + 2 * depth) + _render_instr(ins))
        if ins.op in ("block", "loop", "if", "else"):
            depth += 1
    return "\n".join(lines)


def module_to_wat(module: Module) -> str:
    """Render a whole module."""
    lines = [f"(module ;; {module.name}" if module.name else "(module"]
    for index, func_type in enumerate(module.types):
        lines.append(f"  (type (;{index};) (func {_render_functype(func_type)}))")
    for imp in module.imports:
        lines.append(f'  (import "{imp.module}" "{imp.name}" ({imp.kind} {imp.desc}))')
    for index, memory in enumerate(module.memories):
        limits = memory.limits
        maximum = f" {limits.maximum}" if limits.maximum is not None else ""
        lines.append(f"  (memory (;{index};) {limits.minimum}{maximum})")
    for index, table in enumerate(module.tables):
        limits = table.limits
        maximum = f" {limits.maximum}" if limits.maximum is not None else ""
        lines.append(f"  (table (;{index};) {limits.minimum}{maximum} funcref)")
    for index, glob in enumerate(module.globals):
        mut = f"(mut {glob.type.valtype.value})" if glob.type.mutable else glob.type.valtype.value
        init = "; ".join(str(i) for i in glob.init)
        lines.append(f"  (global (;{index};) {mut} ({init}))")
    for index, func in enumerate(module.funcs):
        abs_index = module.num_imported_funcs + index
        func_type = module.type_at(func.type_index)
        header = f"  (func (;{abs_index};)"
        if func.name:
            header += f" ${func.name}"
        sig = _render_functype(func_type)
        if sig:
            header += " " + sig
        lines.append(header)
        if func.locals:
            lines.append("    (local " + " ".join(t.value for t in func.locals) + ")")
        rendered = body_to_wat(func.body)
        if rendered:
            lines.append(rendered)
        lines.append("  )")
    for export in module.exports:
        lines.append(f'  (export "{export.name}" ({export.kind} {export.index}))')
    if module.start is not None:
        lines.append(f"  (start {module.start})")
    for element in module.elements:
        offset = "; ".join(str(i) for i in element.offset)
        funcs = " ".join(str(i) for i in element.func_indices)
        lines.append(f"  (elem (table {element.table_index}) ({offset}) func {funcs})")
    for segment in module.data:
        offset = "; ".join(str(i) for i in segment.offset)
        preview = segment.data[:16].hex()
        ellipsis = "…" if len(segment.data) > 16 else ""
        lines.append(
            f'  (data (memory {segment.memory_index}) ({offset}) "{preview}{ellipsis}" ;; {len(segment.data)} bytes'
        )
    lines.append(")")
    return "\n".join(lines)
