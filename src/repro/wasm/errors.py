"""Error taxonomy for the WebAssembly substrate."""

from __future__ import annotations


class WasmError(Exception):
    """Base class for all WebAssembly substrate errors."""


class DecodeError(WasmError):
    """The binary is malformed (decoding failed)."""


class ValidationError(WasmError):
    """The module is ill-typed (validation failed)."""


class LinkError(WasmError):
    """Instantiation failed (missing import, type mismatch, …)."""


class Trap(WasmError):
    """A runtime trap: out-of-bounds access, division by zero, …

    ``kind`` is a stable machine-readable tag used by tests and by the
    bounds-checking strategies (e.g. ``out-of-bounds-memory``).
    """

    def __init__(self, kind: str, message: str = "") -> None:
        super().__init__(f"{kind}: {message}" if message else kind)
        self.kind = kind


class ExhaustionError(WasmError):
    """Call-stack exhaustion."""
