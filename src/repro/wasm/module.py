"""The WebAssembly module structure.

Mirrors the section layout of the binary format: types, imports,
functions, tables, memories, globals, exports, an optional start
function, element segments (function-table initialisers — the paper's
"tables of function pointers" sandboxing mechanism), and data segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.wasm.errors import ValidationError
from repro.wasm.instructions import Instr
from repro.wasm.types import FuncType, GlobalType, MemoryType, TableType, ValType


@dataclass
class Function:
    """A defined (non-imported) function."""

    type_index: int
    locals: List[ValType] = field(default_factory=list)
    body: List[Instr] = field(default_factory=list)
    name: str = ""


@dataclass
class Import:
    """An imported function, memory, table or global."""

    module: str
    name: str
    kind: str  # 'func' | 'table' | 'memory' | 'global'
    desc: Union[int, TableType, MemoryType, GlobalType]


@dataclass
class Export:
    name: str
    kind: str  # 'func' | 'table' | 'memory' | 'global'
    index: int


@dataclass
class Global:
    """A defined global with its constant initialiser expression."""

    type: GlobalType
    init: List[Instr] = field(default_factory=list)
    name: str = ""


@dataclass
class ElementSegment:
    """Initialises a slice of a funcref table."""

    table_index: int
    offset: List[Instr]
    func_indices: List[int]


@dataclass
class DataSegment:
    """Initialises a slice of a linear memory."""

    memory_index: int
    offset: List[Instr]
    data: bytes


@dataclass
class Module:
    types: List[FuncType] = field(default_factory=list)
    imports: List[Import] = field(default_factory=list)
    funcs: List[Function] = field(default_factory=list)
    tables: List[TableType] = field(default_factory=list)
    memories: List[MemoryType] = field(default_factory=list)
    globals: List[Global] = field(default_factory=list)
    exports: List[Export] = field(default_factory=list)
    start: Optional[int] = None
    elements: List[ElementSegment] = field(default_factory=list)
    data: List[DataSegment] = field(default_factory=list)
    name: str = ""

    # ------------------------------------------------------------------
    # Index-space helpers (imports precede definitions in each space)
    # ------------------------------------------------------------------
    def imported(self, kind: str) -> List[Import]:
        return [imp for imp in self.imports if imp.kind == kind]

    @property
    def num_imported_funcs(self) -> int:
        return len(self.imported("func"))

    @property
    def num_funcs(self) -> int:
        return self.num_imported_funcs + len(self.funcs)

    def func_type(self, func_index: int) -> FuncType:
        """Signature of a function by absolute index (imports first)."""
        imported = self.imported("func")
        if func_index < len(imported):
            type_index = imported[func_index].desc
        else:
            local_index = func_index - len(imported)
            if local_index >= len(self.funcs):
                raise ValidationError(f"function index {func_index} out of range")
            type_index = self.funcs[local_index].type_index
        return self.type_at(type_index)

    def type_at(self, type_index: int) -> FuncType:
        if not 0 <= type_index < len(self.types):
            raise ValidationError(f"type index {type_index} out of range")
        return self.types[type_index]

    def defined_func(self, func_index: int) -> Function:
        """The Function object for an absolute index; imports have none."""
        local_index = func_index - self.num_imported_funcs
        if local_index < 0:
            raise ValidationError(f"function {func_index} is imported")
        if local_index >= len(self.funcs):
            raise ValidationError(f"function index {func_index} out of range")
        return self.funcs[local_index]

    def global_type(self, global_index: int) -> GlobalType:
        imported = self.imported("global")
        if global_index < len(imported):
            return imported[global_index].desc
        local_index = global_index - len(imported)
        if local_index >= len(self.globals):
            raise ValidationError(f"global index {global_index} out of range")
        return self.globals[local_index].type

    @property
    def num_globals(self) -> int:
        return len(self.imported("global")) + len(self.globals)

    @property
    def num_memories(self) -> int:
        return len(self.imported("memory")) + len(self.memories)

    @property
    def num_tables(self) -> int:
        return len(self.imported("table")) + len(self.tables)

    def export_named(self, name: str) -> Export:
        for export in self.exports:
            if export.name == name:
                return export
        raise KeyError(f"no export named {name!r}")

    def add_type(self, func_type: FuncType) -> int:
        """Intern a function type, returning its index."""
        try:
            return self.types.index(func_type)
        except ValueError:
            self.types.append(func_type)
            return len(self.types) - 1
