"""A WAT (WebAssembly text) parser for the flat instruction form.

Complements :mod:`repro.wasm.wat` (the printer): enough of the text
format to hand-write test fixtures and small programs without touching
the builder API.  Supported grammar:

* ``(module ...)`` with ``(memory min [max])``, ``(table min [max]
  funcref)``, ``(global [$id] (mut? <type>) (<type>.const v))``,
  ``(func ...)``, ``(export "n" (func|memory|table|global idx|$id))``,
  ``(elem (i32.const k) $f ...)``, ``(data (i32.const k) "bytes")``,
  ``(start $f)``;
* functions with ``$identifiers``, ``(param <t>*)``, ``(result <t>)``,
  ``(local <t>*)`` and **flat** (non-folded) instructions, including
  structured ``block/loop/if … else … end`` with optional
  ``(result <t>)`` annotations;
* ``call $name`` and branch labels by numeric depth.

Folded expressions ``(i32.add (…) (…))`` are not supported — the
printer emits flat form, and flat form keeps the parser honest and
small.  Raises :class:`WatParseError` with positions on bad input.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.wasm import opcodes
from repro.wasm.errors import WasmError
from repro.wasm.instructions import Instr
from repro.wasm.module import (
    DataSegment,
    ElementSegment,
    Export,
    Function,
    Global,
    Module,
)
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType


class WatParseError(WasmError):
    """Malformed WAT input."""


_VALTYPES = {"i32": ValType.I32, "i64": ValType.I64,
             "f32": ValType.F32, "f64": ValType.F64}


# ----------------------------------------------------------------------
# S-expression tokenizer/reader
# ----------------------------------------------------------------------
def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    index, length = 0, len(text)
    while index < length:
        ch = text[index]
        if ch in " \t\r\n":
            index += 1
        elif text.startswith(";;", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline
        elif text.startswith("(;", index):
            close = text.find(";)", index)
            if close < 0:
                raise WatParseError("unterminated block comment")
            index = close + 2
        elif ch in "()":
            tokens.append(ch)
            index += 1
        elif ch == '"':
            end = index + 1
            out = []
            while end < length and text[end] != '"':
                if text[end] == "\\":
                    end += 1
                    if end >= length:
                        raise WatParseError("unterminated escape")
                    esc = text[end]
                    if esc in "\\\"'":
                        out.append(esc)
                    elif esc == "n":
                        out.append("\n")
                    elif esc == "t":
                        out.append("\t")
                    else:  # \xx hex byte
                        out.append(chr(int(text[end : end + 2], 16)))
                        end += 1
                else:
                    out.append(text[end])
                end += 1
            if end >= length:
                raise WatParseError("unterminated string literal")
            tokens.append('"' + "".join(out))
            index = end + 1
        else:
            end = index
            while end < length and text[end] not in ' \t\r\n()";':
                end += 1
            tokens.append(text[index:end])
            index = end
    return tokens


Sexp = Union[str, list]


def _read(tokens: List[str], position: int = 0) -> Tuple[Sexp, int]:
    if position >= len(tokens):
        raise WatParseError("unexpected end of input")
    token = tokens[position]
    if token == "(":
        items: List[Sexp] = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            item, position = _read(tokens, position)
            items.append(item)
        if position >= len(tokens):
            raise WatParseError("missing closing parenthesis")
        return items, position + 1
    if token == ")":
        raise WatParseError("unexpected ')'")
    return token, position + 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def parse_wat(text: str) -> Module:
    """Parse WAT source into a Module (validate separately)."""
    sexp, position = _read(_tokenize(text))
    if position != len(_tokenize(text)):
        pass  # trailing content is tolerated only if whitespace; re-check:
    if not isinstance(sexp, list) or not sexp or sexp[0] != "module":
        raise WatParseError("top-level form must be (module ...)")
    return _Parser().parse_module(sexp[1:])


class _Parser:
    def __init__(self) -> None:
        self.module = Module()
        self.func_names: Dict[str, int] = {}
        self.global_names: Dict[str, int] = {}
        self._pending_funcs: List[Tuple[int, list]] = []

    def parse_module(self, forms: List[Sexp]) -> Module:
        # First pass: assign indices to named items so calls can refer
        # forward.
        for form in forms:
            if isinstance(form, list) and form and form[0] == "func":
                index = len(self.module.funcs)
                name = ""
                if len(form) > 1 and isinstance(form[1], str) and form[1].startswith("$"):
                    name = form[1][1:]
                    self.func_names[form[1]] = index
                self.module.funcs.append(Function(type_index=-1, name=name))
                self._pending_funcs.append((index, form))
            elif isinstance(form, list) and form and form[0] == "global":
                if len(form) > 1 and isinstance(form[1], str) and form[1].startswith("$"):
                    self.global_names[form[1]] = len(self.global_names)
        for form in forms:
            if not isinstance(form, list) or not form:
                raise WatParseError(f"unexpected module field {form!r}")
            head = form[0]
            handler = getattr(self, f"_field_{head.replace('.', '_')}", None)
            if handler is None:
                raise WatParseError(f"unsupported module field ({head} ...)")
            handler(form)
        for index, form in self._pending_funcs:
            self._parse_func_body(index, form)
        return self.module

    # -- fields --------------------------------------------------------
    def _field_func(self, form: list) -> None:
        pass  # bodies parsed after all indices are known

    def _field_memory(self, form: list) -> None:
        numbers = [int(f) for f in form[1:] if isinstance(f, str) and not f.startswith("$")]
        if not numbers:
            raise WatParseError("(memory) needs a minimum size")
        maximum = numbers[1] if len(numbers) > 1 else None
        self.module.memories.append(MemoryType(Limits(numbers[0], maximum)))

    def _field_table(self, form: list) -> None:
        numbers = [int(f) for f in form[1:] if isinstance(f, str) and f.isdigit()]
        if not numbers:
            raise WatParseError("(table) needs a minimum size")
        maximum = numbers[1] if len(numbers) > 1 else None
        self.module.tables.append(TableType(Limits(numbers[0], maximum)))

    def _field_global(self, form: list) -> None:
        rest = form[1:]
        if rest and isinstance(rest[0], str) and rest[0].startswith("$"):
            rest = rest[1:]
        if len(rest) != 2:
            raise WatParseError("(global) needs a type and an initialiser")
        type_form, init_form = rest
        if isinstance(type_form, list) and type_form[0] == "mut":
            gtype = GlobalType(_valtype(type_form[1]), mutable=True)
        else:
            gtype = GlobalType(_valtype(type_form), mutable=False)
        if not isinstance(init_form, list) or not init_form[0].endswith(".const"):
            raise WatParseError("global initialiser must be a const expression")
        init = [_const_instr(init_form)]
        self.module.globals.append(Global(gtype, init))

    def _field_export(self, form: list) -> None:
        if len(form) != 3 or not isinstance(form[1], str) or not form[1].startswith('"'):
            raise WatParseError('(export "name" (kind idx)) expected')
        name = form[1][1:]
        kind, ref = form[2][0], form[2][1]
        index = self._resolve(kind, ref)
        self.module.exports.append(Export(name, kind, index))

    def _field_start(self, form: list) -> None:
        self.module.start = self._resolve("func", form[1])

    def _field_elem(self, form: list) -> None:
        offset = [_const_instr(form[1])]
        funcs = [self._resolve("func", ref) for ref in form[2:]]
        self.module.elements.append(ElementSegment(0, offset, funcs))

    def _field_data(self, form: list) -> None:
        offset = [_const_instr(form[1])]
        blobs = [f[1:] for f in form[2:] if isinstance(f, str) and f.startswith('"')]
        raw = "".join(blobs).encode("latin-1")
        self.module.data.append(DataSegment(0, offset, raw))

    # -- functions ----------------------------------------------------------
    def _parse_func_body(self, index: int, form: list) -> None:
        rest = list(form[1:])
        if rest and isinstance(rest[0], str) and rest[0].startswith("$"):
            rest.pop(0)
        params: List[ValType] = []
        results: List[ValType] = []
        locals_: List[ValType] = []
        body_forms: List[Sexp] = []
        exports: List[str] = []
        in_header = True
        for item in rest:
            head = item[0] if isinstance(item, list) and item else None
            if in_header and head == "param":
                params.extend(_valtype(t) for t in item[1:] if not t.startswith("$"))
            elif in_header and head == "result":
                results.extend(_valtype(t) for t in item[1:])
            elif in_header and head == "local":
                locals_.extend(_valtype(t) for t in item[1:] if not t.startswith("$"))
            elif in_header and head == "export":
                exports.append(item[1][1:])
            else:
                # First instruction ends the header: later (result …)
                # forms annotate blocks, not the function type.
                in_header = False
                body_forms.append(item)
        func = self.module.funcs[index]
        func.type_index = self.module.add_type(FuncType(tuple(params), tuple(results)))
        func.locals = locals_
        func.body = self._parse_instrs(body_forms)
        for export_name in exports:
            self.module.exports.append(Export(export_name, "func", index))

    def _parse_instrs(self, forms: List[Sexp]) -> List[Instr]:
        instrs: List[Instr] = []
        position = 0
        while position < len(forms):
            token = forms[position]
            if isinstance(token, list):
                raise WatParseError(
                    f"folded expressions are not supported: ({token[0]} ...)"
                )
            info = opcodes.BY_NAME.get(token)
            if info is None:
                raise WatParseError(f"unknown instruction {token!r}")
            position += 1
            if info.imm == "":
                instrs.append(Instr(token))
            elif info.imm == "block":
                result: Optional[ValType] = None
                if (
                    position < len(forms)
                    and isinstance(forms[position], list)
                    and forms[position][0] == "result"
                ):
                    result = _valtype(forms[position][1])
                    position += 1
                instrs.append(Instr(token, (result,)))
            elif info.imm == "u32":
                arg = forms[position]
                position += 1
                if token == "call":
                    instrs.append(Instr(token, (self._resolve("func", arg),)))
                elif token in ("global.get", "global.set"):
                    instrs.append(Instr(token, (self._resolve("global", arg),)))
                else:
                    instrs.append(Instr(token, (int(arg),)))
            elif info.imm == "memarg":
                align_log2 = _natural_align(info)
                offset = 0
                while position < len(forms) and isinstance(forms[position], str) and "=" in forms[position]:
                    key, _, value = forms[position].partition("=")
                    if key == "offset":
                        offset = int(value)
                    elif key == "align":
                        align_log2 = int(value).bit_length() - 1
                    else:
                        raise WatParseError(f"unknown memarg key {key!r}")
                    position += 1
                instrs.append(Instr(token, (align_log2, offset)))
            elif info.imm in ("i32", "i64"):
                instrs.append(Instr(token, (int(forms[position], 0),)))
                position += 1
            elif info.imm in ("f32", "f64"):
                instrs.append(Instr(token, (float(forms[position]),)))
                position += 1
            elif info.imm == "br_table":
                labels: List[int] = []
                while position < len(forms) and isinstance(forms[position], str) and forms[position].isdigit():
                    labels.append(int(forms[position]))
                    position += 1
                if len(labels) < 1:
                    raise WatParseError("br_table needs at least a default label")
                instrs.append(Instr(token, (tuple(labels[:-1]), labels[-1])))
            elif info.imm == "call_indirect":
                type_index = None
                if (
                    position < len(forms)
                    and isinstance(forms[position], list)
                    and forms[position][0] == "type"
                ):
                    type_index = int(forms[position][1])
                    position += 1
                if type_index is None:
                    raise WatParseError("call_indirect requires (type n)")
                instrs.append(Instr(token, (type_index, 0)))
            elif info.imm in ("memidx", "memcopy", "memfill"):
                instrs.append(Instr(token))
            else:  # pragma: no cover - closed table
                raise WatParseError(f"unhandled immediate kind {info.imm}")
        return instrs

    # -- helpers ---------------------------------------------------------
    def _resolve(self, kind: str, ref: str) -> int:
        if isinstance(ref, str) and ref.startswith("$"):
            table = self.func_names if kind == "func" else self.global_names
            if ref not in table:
                raise WatParseError(f"unknown {kind} name {ref}")
            return table[ref]
        return int(ref)


def _valtype(token: str) -> ValType:
    try:
        return _VALTYPES[token]
    except KeyError:
        raise WatParseError(f"unknown value type {token!r}") from None


def _const_instr(form: list) -> Instr:
    op = form[0]
    if op in ("i32.const", "i64.const"):
        return Instr(op, (int(form[1], 0),))
    if op in ("f32.const", "f64.const"):
        return Instr(op, (float(form[1]),))
    raise WatParseError(f"expected const expression, got ({op} ...)")


def _natural_align(info: opcodes.OpInfo) -> int:
    return max(0, info.access_bytes.bit_length() - 1)
