"""LEB128 variable-length integer encoding.

WebAssembly uses unsigned LEB128 for indices/sizes and signed LEB128 for
integer literals.  These functions operate on ``bytearray``/``bytes``
plus an offset, returning ``(value, new_offset)`` on reads, and raise
:class:`~repro.wasm.errors.DecodeError` on malformed or over-long input.
"""

from __future__ import annotations

from typing import Tuple

from repro.wasm.errors import DecodeError


def encode_u32(value: int) -> bytes:
    if not 0 <= value < (1 << 32):
        raise ValueError(f"u32 out of range: {value}")
    return encode_unsigned(value)


def encode_unsigned(value: int) -> bytes:
    if value < 0:
        raise ValueError(f"unsigned LEB128 cannot encode negative {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_signed(value: int, bits: int = 64) -> bytes:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"s{bits} out of range: {value}")
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


def decode_unsigned(data: bytes, offset: int, max_bits: int = 32) -> Tuple[int, int]:
    result = 0
    shift = 0
    max_bytes = (max_bits + 6) // 7
    for count in range(max_bytes):
        if offset >= len(data):
            raise DecodeError("unexpected end of LEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result >= (1 << max_bits):
                raise DecodeError(f"LEB128 value exceeds u{max_bits}")
            return result, offset
        shift += 7
    raise DecodeError(f"LEB128 longer than {max_bytes} bytes for u{max_bits}")


def decode_signed(data: bytes, offset: int, max_bits: int = 64) -> Tuple[int, int]:
    result = 0
    shift = 0
    max_bytes = (max_bits + 6) // 7
    for count in range(max_bytes):
        if offset >= len(data):
            raise DecodeError("unexpected end of LEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result |= -(1 << shift)
            lo = -(1 << (max_bits - 1))
            hi = (1 << (max_bits - 1)) - 1
            if not lo <= result <= hi:
                raise DecodeError(f"LEB128 value exceeds s{max_bits}")
            return result, offset
    raise DecodeError(f"LEB128 longer than {max_bytes} bytes for s{max_bits}")
