"""Static module statistics.

Workload-characterization helpers over *static* module structure (the
dynamic counterpart lives in :mod:`repro.runtime.profile`): opcode
histograms, per-function sizes, section sizes of the encoded binary.
Used by the tier experiment and handy when adding new workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.wasm import opcodes
from repro.wasm.encoder import encode_module
from repro.wasm.module import Module


@dataclass(frozen=True)
class FunctionStats:
    name: str
    instructions: int
    locals: int
    max_nesting: int
    calls: int
    memory_ops: int


@dataclass
class ModuleStats:
    """Static statistics for one module."""

    name: str
    functions: List[FunctionStats] = field(default_factory=list)
    opcode_histogram: Counter = field(default_factory=Counter)
    category_histogram: Counter = field(default_factory=Counter)
    binary_bytes: int = 0
    data_bytes: int = 0
    memory_pages: int = 0

    @property
    def total_instructions(self) -> int:
        return sum(f.instructions for f in self.functions)

    @property
    def static_memory_op_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        loads = self.category_histogram.get("load", 0)
        stores = self.category_histogram.get("store", 0)
        return (loads + stores) / self.total_instructions

    def top_opcodes(self, count: int = 10) -> List[Tuple[str, int]]:
        return self.opcode_histogram.most_common(count)


def module_stats(module: Module) -> ModuleStats:
    """Compute static statistics for a module."""
    stats = ModuleStats(name=module.name)
    for func in module.funcs:
        nesting = 0
        max_nesting = 0
        calls = 0
        memory_ops = 0
        for ins in func.body:
            info = ins.info
            stats.opcode_histogram[ins.op] += 1
            stats.category_histogram[info.category] += 1
            if ins.op in ("block", "loop", "if"):
                nesting += 1
                max_nesting = max(max_nesting, nesting)
            elif ins.op == "end":
                nesting -= 1
            elif ins.op in ("call", "call_indirect"):
                calls += 1
            if info.category in ("load", "store"):
                memory_ops += 1
        stats.functions.append(
            FunctionStats(
                name=func.name,
                instructions=len(func.body),
                locals=len(func.locals),
                max_nesting=max_nesting,
                calls=calls,
                memory_ops=memory_ops,
            )
        )
    stats.binary_bytes = len(encode_module(module))
    stats.data_bytes = sum(len(seg.data) for seg in module.data)
    if module.memories:
        stats.memory_pages = module.memories[0].limits.minimum
    return stats
