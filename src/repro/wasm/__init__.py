"""WebAssembly substrate.

A from-scratch implementation of the WebAssembly MVP (plus the
sign-extension operators) sufficient to author, encode, decode, validate
and execute the paper's benchmark programs:

* :mod:`types`, :mod:`opcodes`, :mod:`instructions`, :mod:`module` —
  the language model;
* :mod:`leb128`, :mod:`encoder`, :mod:`decoder` — the binary format;
* :mod:`validator` — the spec's type-checking algorithm;
* :mod:`builder` — a structured module/function builder;
* :mod:`dsl` — a small expression DSL used to author the PolyBench and
  SPEC-proxy workloads as genuine Wasm modules;
* :mod:`wat` — a WAT-style text printer for debugging;
* :mod:`coverage` — off-by-default edge-coverage maps over the decoder,
  validator and interpreter dispatch (the fuzzing campaign's guidance
  signal).
"""

from repro.wasm import coverage
from repro.wasm.errors import DecodeError, ValidationError, Trap, WasmError
from repro.wasm.types import ValType, FuncType, Limits, MemoryType, TableType, GlobalType
from repro.wasm.instructions import Instr
from repro.wasm.module import Module, Function, Export, Import, Global, DataSegment, ElementSegment
from repro.wasm.encoder import encode_module
from repro.wasm.decoder import decode_module
from repro.wasm.validator import validate_module
from repro.wasm.builder import ModuleBuilder, FunctionBuilder
from repro.wasm.wat import module_to_wat
from repro.wasm.wat_parser import parse_wat, WatParseError

__all__ = [
    "coverage",
    "DecodeError",
    "ValidationError",
    "Trap",
    "WasmError",
    "ValType",
    "FuncType",
    "Limits",
    "MemoryType",
    "TableType",
    "GlobalType",
    "Instr",
    "Module",
    "Function",
    "Export",
    "Import",
    "Global",
    "DataSegment",
    "ElementSegment",
    "encode_module",
    "decode_module",
    "validate_module",
    "ModuleBuilder",
    "FunctionBuilder",
    "module_to_wat",
    "parse_wat",
    "WatParseError",
]
