"""Instruction representation.

Function bodies are flat sequences of :class:`Instr` — structured
control flow (``block``/``loop``/``if``/``else``/``end``) appears inline
exactly as in the binary format.  The interpreter and compiler resolve
the structure into jump targets when they pre-process a function.

``args`` layout per immediate kind (see :mod:`repro.wasm.opcodes`):

=================  ==========================================
``'u32'``          ``(index,)``
``'memarg'``       ``(align, offset)``
``'i32'/'i64'``    ``(int_value,)``
``'f32'/'f64'``    ``(float_value,)``
``'block'``        ``(result_valtype_or_None,)``
``'br_table'``     ``(labels_tuple, default_label)``
``'call_indirect'`` ``(type_index, table_index)``
``'memidx'``       ``()``
``'memcopy'``      ``()``
``'memfill'``      ``()``
``''``             ``()``
=================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.wasm import opcodes


@dataclass(frozen=True)
class Instr:
    """One WebAssembly instruction."""

    op: str
    args: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in opcodes.BY_NAME:
            raise ValueError(f"unknown instruction {self.op!r}")

    @property
    def info(self) -> opcodes.OpInfo:
        return opcodes.BY_NAME[self.op]

    def __str__(self) -> str:
        if not self.args:
            return self.op
        rendered = " ".join(str(a) for a in self.args)
        return f"{self.op} {rendered}"


def instr(op: str, *args: Any) -> Instr:
    """Convenience constructor: ``instr('i32.const', 5)``."""
    return Instr(op, tuple(args))
