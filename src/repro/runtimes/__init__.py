"""Runtime models: the paper's execution environments (§3.2).

Six environments: native GCC and Clang baselines, the WAVM (LLVM
MCJIT) and Wasmtime (Cranelift) ahead-of-time compilers, V8 TurboFan,
and the Wasm3 threaded interpreter.  Each model configures the shared
compiler (pass set, allocator quality, per-access bookkeeping) or the
interpreter cost model, plus the system-level behaviour the
discrete-event simulation needs (helper threads, GC pauses, process-
vs-thread isolation).
"""

from repro.runtimes.base import RuntimeModel
from repro.runtimes.registry import (
    RUNTIMES,
    WASM_RUNTIMES,
    bce_enabled,
    runtime_named,
    set_bce_enabled,
)

__all__ = [
    "RuntimeModel", "RUNTIMES", "WASM_RUNTIMES", "bce_enabled",
    "runtime_named", "set_bce_enabled",
]
