"""The RuntimeModel type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.compiler.pipeline import CompiledModule, CompilerConfig, compile_module
from repro.compiler.timing import (
    check_counts_for_profile,
    cycles_for_profile,
    interpreter_cycles,
)
from repro.isa.model import IsaModel
from repro.runtime.profile import ExecutionProfile
from repro.runtime.strategies import BoundsStrategy
from repro.trace.events import RUNTIME_COMPILE, RUNTIME_COSTING
from repro.trace.tracer import TRACE
from repro.wasm.module import Module


@dataclass
class RuntimeModel:
    """One execution environment."""

    name: str
    display: str
    kind: str  # 'native' | 'aot' | 'jit' | 'interp'
    compiler: Optional[CompilerConfig]
    #: Scheduling/lowering quality not captured by the pass set: a
    #: multiplier ≥ 1.0 on compiled-block cycles (LLVM = 1.0).
    schedule_overhead: float = 1.0
    supported_isas: FrozenSet[str] = frozenset({"x86_64", "armv8", "riscv64"})
    #: Background helper threads the runtime spawns (V8's JIT/GC/IO
    #: workers — the source of the Fig. 5b context-switch blow-up).
    helper_threads: int = 0
    #: Periodic stop-the-world pauses (V8's GC), seconds.  The
    #: interval is per worker-compute at one thread; the harness
    #: shortens it as workers multiply (shared-heap pressure).
    gc_pause_interval: float = 0.0
    gc_pause_duration: float = 0.0
    #: Helper-thread activity: each helper runs ``helper_burst`` of
    #: work every ``helper_period`` (JIT/GC/IO background work).
    helper_burst: float = 2.5e-3
    helper_period: float = 12e-3
    #: Native code runs one *process* per benchmark copy (vfork+fexecve
    #: in the paper's harness); Wasm runtimes run isolates in threads.
    process_per_instance: bool = False
    #: Which strategies this runtime can be configured with.  Compiling
    #: runtimes take the full axis — the paper's five plus the
    #: hardware-assisted extensions (mte is additionally ISA-gated at
    #: run time: it needs the memory-tagging extension, i.e. armv8).
    strategies: Tuple[str, ...] = (
        "none", "clamp", "trap", "mprotect", "uffd", "mte", "wasm64"
    )
    #: Default strategy (the paper: WAVM/Wasmtime/V8 default to mprotect).
    default_strategy: str = "mprotect"
    #: Translation cost per static wasm instruction, in seconds — the
    #: compile-speed/code-quality trade-off Titzer [29] tabulates
    #: (LLVM slowest, baseline tiers and interpreters near-free).
    compile_seconds_per_instr: float = 0.0
    _cache: Dict[Tuple[int, str, str], Tuple[CompiledModule, object]] = field(
        default_factory=dict, repr=False
    )
    #: Block-costing results per (module, profile, isa, strategy): the
    #: costing walk over every block of every function is pure, so one
    #: run prices the configuration for all subsequent measurements
    #: (thread sweeps re-price the identical module dozens of times).
    #: Entries keep a strong reference to the keyed objects so an id()
    #: can never be recycled onto a different module/profile.
    _cycles_cache: Dict[Tuple[int, int, str, str], Tuple[float, object, object]] = field(
        default_factory=dict, repr=False
    )
    #: Dynamic bounds-check counters per (module, profile, isa,
    #: strategy), same keying/lifetime discipline as ``_cycles_cache``.
    _check_cache: Dict[Tuple[int, int, str, str], Tuple[Dict[str, int], object, object]] = field(
        default_factory=dict, repr=False
    )

    @property
    def is_native(self) -> bool:
        return self.kind == "native"

    def supports(self, isa_name: str) -> bool:
        return isa_name in self.supported_isas

    def compiled(
        self, module: Module, isa: IsaModel, strategy: BoundsStrategy
    ) -> CompiledModule:
        if self.compiler is None:
            raise ValueError(f"runtime {self.name} does not compile code")
        key = (id(module), isa.name, strategy.name)
        cached = key in self._cache
        if not cached:
            self._cache[key] = (
                compile_module(module, isa, self.compiler, strategy), module,
            )
        if TRACE.enabled:
            # Pre-simulation work: stamped at t=0 of the enclosing run.
            TRACE.emit(
                0.0, RUNTIME_COMPILE,
                runtime=self.name, isa=isa.name, strategy=strategy.name,
                cached=cached,
            )
        return self._cache[key][0]

    def cycles(
        self,
        module: Module,
        profile: ExecutionProfile,
        isa: IsaModel,
        strategy: BoundsStrategy,
    ) -> float:
        """Single-thread execution cycles for one run of the workload."""
        if not self.supports(isa.name):
            raise ValueError(f"runtime {self.name} has no {isa.name} backend")
        key = (id(module), id(profile), isa.name, strategy.name)
        cached = self._cycles_cache.get(key)
        if cached is not None:
            if TRACE.enabled:
                TRACE.emit(
                    0.0, RUNTIME_COSTING,
                    runtime=self.name, isa=isa.name, strategy=strategy.name,
                    cycles=cached[0], cached=True,
                )
            return cached[0]
        if self.kind == "interp":
            result = interpreter_cycles(profile, isa)
        else:
            result = (
                cycles_for_profile(self.compiled(module, isa, strategy), profile)
                * self.schedule_overhead
            )
        self._cycles_cache[key] = (result, module, profile)
        if TRACE.enabled:
            TRACE.emit(
                0.0, RUNTIME_COSTING,
                runtime=self.name, isa=isa.name, strategy=strategy.name,
                cycles=result, cached=False,
            )
        return result

    def check_stats(
        self,
        module: Module,
        profile: ExecutionProfile,
        isa: IsaModel,
        strategy: BoundsStrategy,
    ) -> Dict[str, int]:
        """Dynamic bounds-check counts for one run: emitted vs elided.

        Interpreters check every access inline (nothing elided); code
        without inline checks (``none`` or the signal-based strategies)
        emits none.  Otherwise the counts come from the compiled
        module's surviving ``boundscheck`` ops and the BCE pass's
        per-block elision counters, priced by the dynamic profile.
        """
        if self.kind == "interp":
            return {"emitted": profile.mem_loads + profile.mem_stores, "elided": 0}
        if self.compiler is None or not strategy.inline_check:
            return {"emitted": 0, "elided": 0}
        key = (id(module), id(profile), isa.name, strategy.name)
        cached = self._check_cache.get(key)
        if cached is None:
            stats = check_counts_for_profile(
                self.compiled(module, isa, strategy), profile
            )
            cached = (stats, module, profile)
            self._check_cache[key] = cached
        return dict(cached[0])

    def compile_seconds(self, module: Module) -> float:
        """Modelled translation time for the whole module."""
        instrs = sum(len(func.body) for func in module.funcs)
        return instrs * self.compile_seconds_per_instr

    def code_size_ops(self, module: Module, isa: IsaModel, strategy: BoundsStrategy) -> int:
        """Static machine-op count (code-size proxy); 0 for interpreters."""
        if self.compiler is None:
            return 0
        return self.compiled(module, isa, strategy).total_static_ops
