"""The six execution environments, configured to match §3.2.

Calibration notes (targets from the paper, §1.3, §4.1, §4.4):

* WAVM (LLVM) is the fastest Wasm runtime — 8–20 % average overhead on
  x86-64 — so it gets the full LLVM pass set and near-native allocator
  quality, minus one reserved register for the sandbox memory base.
* Wasmtime (Cranelift) trails WAVM: no loop-invariant code motion or
  strength reduction in our Cranelift model, weaker allocation, small
  scheduling overhead.
* V8 TurboFan lands just behind Wasmtime single-threaded, pays ~10
  points extra under signal-based strategies (trap-handler metadata +
  dynamic memory base, §4.1), spawns helper threads and periodically
  pauses for GC (the Fig. 4/5 16-thread behaviour).
* Wasm3 is a threaded interpreter measured at 6–11× slower than
  V8-TurboFan (§4.4); it has no compiler configuration at all and
  effectively uses the ``trap`` strategy (§3.2).
* Native GCC beats native Clang slightly on PolyBench (§4.1 observes
  WAVM can approach GCC because LLVM sometimes generates better code
  from wasm than from C); we model that as a small loop bonus.
* WAVM and Wasmtime have no RISC-V backend (§3.4): MCJIT crashes and
  Cranelift lacks the target, leaving Native/Wasm3/V8 there.
"""

from __future__ import annotations

import dataclasses
import os

from repro.compiler.pipeline import ALL_PASSES, CompilerConfig
from repro.runtimes.base import RuntimeModel

#: Bounds-check elimination per engine: LLVM's range analysis gives
#: WAVM (and native) the full pass; TurboFan types induction variables,
#: so V8 gets it too; Cranelift only deduplicates dominated checks (no
#: loop phase); Liftoff and Wasm3 do no elimination at all.
_LLVM_PASSES = frozenset(ALL_PASSES)
_CRANELIFT_PASSES = frozenset({"constfold", "cse", "licm", "dce", "bce"})
_TURBOFAN_PASSES = frozenset(
    {"constfold", "cse", "licm", "dce", "bce", "bceloop"}
)

NATIVE_CLANG = RuntimeModel(
    name="native-clang",
    display="Native Clang 13",
    kind="native",
    compiler=CompilerConfig(
        name="clang",
        passes=_LLVM_PASSES,
        regalloc_quality=1.0,
        addressing_fusion=True,
    ),
    process_per_instance=True,
    strategies=("none",),
    default_strategy="none",
)

NATIVE_GCC = RuntimeModel(
    name="native-gcc",
    display="Native GCC 11",
    kind="native",
    compiler=CompilerConfig(
        name="gcc",
        passes=_LLVM_PASSES,
        regalloc_quality=1.0,
        addressing_fusion=True,
        # GCC's loop optimiser edges out LLVM on PolyBench kernels.
        loop_bonus=0.94,
    ),
    process_per_instance=True,
    strategies=("none",),
    default_strategy="none",
)

WAVM = RuntimeModel(
    name="wavm",
    display="WAVM (LLVM MCJIT)",
    kind="aot",
    compiler=CompilerConfig(
        name="wavm-llvm",
        stack_checks=True,
        passes=_LLVM_PASSES,
        # One register reserved for the linear-memory base.
        regalloc_quality=0.92,
        addressing_fusion=True,
    ),
    schedule_overhead=1.13,
    supported_isas=frozenset({"x86_64", "armv8"}),
    compile_seconds_per_instr=25e-6,  # LLVM -O2 via MCJIT
)

WASMTIME = RuntimeModel(
    name="wasmtime",
    display="Wasmtime (Cranelift)",
    kind="aot",
    compiler=CompilerConfig(
        name="cranelift",
        stack_checks=True,
        passes=_CRANELIFT_PASSES,
        regalloc_quality=0.85,
        addressing_fusion=True,
    ),
    schedule_overhead=1.16,
    supported_isas=frozenset({"x86_64", "armv8"}),
    compile_seconds_per_instr=2.5e-6,  # Cranelift: ~10x faster than LLVM
)

#: V8's baseline tier: a single-pass compiler that trades code
#: quality for near-instant start-up (Titzer [29] compares it as
#: "v8-liftoff"; the paper's measurements use the TurboFan tier).
V8_LIFTOFF = RuntimeModel(
    name="v8-liftoff",
    display="V8 Liftoff (baseline tier)",
    kind="jit",
    compiler=CompilerConfig(
        name="liftoff",
        stack_checks=True,
        passes=frozenset({"dce"}),   # a single pass, no real optimisation
        regalloc_quality=0.55,
        addressing_fusion=False,
        signal_strategy_access_ops=1,
    ),
    schedule_overhead=1.25,
    helper_threads=3,
    gc_pause_interval=60e-3,
    gc_pause_duration=1.8e-3,
    compile_seconds_per_instr=0.08e-6,
)

V8 = RuntimeModel(
    name="v8",
    display="V8 TurboFan",
    kind="jit",
    compiler=CompilerConfig(
        name="turbofan",
        stack_checks=True,
        passes=_TURBOFAN_PASSES,
        regalloc_quality=0.82,
        addressing_fusion=True,
        # Trap-handler bookkeeping + dynamic memory base: one extra ALU
        # op per access whenever bounds checking is on in any form —
        # the paper's "10 points for V8" under mprotect/uffd (§4.1).
        # It rides on the access, so BCE cannot elide it and explicit
        # checks can never undercut the signal strategies.
        signal_strategy_access_ops=1,
    ),
    schedule_overhead=1.18,
    helper_threads=3,
    gc_pause_interval=60e-3,
    gc_pause_duration=1.8e-3,
    compile_seconds_per_instr=6e-6,
)

WASM3 = RuntimeModel(
    name="wasm3",
    display="Wasm3 (interpreter)",
    kind="interp",
    compiler=None,
    # The interpreter's memory-op code is inherently trap-checked; it
    # was not modified (§3.2).
    strategies=("trap",),
    default_strategy="trap",
    compile_seconds_per_instr=0.02e-6,  # transpile to the in-place IR
)

RUNTIMES: dict[str, RuntimeModel] = {
    model.name: model
    for model in (NATIVE_CLANG, NATIVE_GCC, WAVM, WASMTIME, V8, V8_LIFTOFF, WASM3)
}

#: The four WebAssembly runtimes, in the paper's presentation order.
WASM_RUNTIMES = ["wavm", "wasmtime", "v8", "wasm3"]


def runtime_named(name: str) -> RuntimeModel:
    try:
        return RUNTIMES[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime {name!r}; choose from {sorted(RUNTIMES)}"
        ) from None


# ----------------------------------------------------------------------
# Global BCE toggle (`--no-bce` / REPRO_NO_BCE)
# ----------------------------------------------------------------------
#: Each model's full pass set as registered above, so the toggle can
#: restore it after a `--no-bce` run.
_DEFAULT_PASSES = {
    model.name: model.compiler.passes
    for model in RUNTIMES.values()
    if model.compiler is not None
}

_bce_enabled = True


def bce_enabled() -> bool:
    return _bce_enabled


def set_bce_enabled(enabled: bool, _reset_engine: bool = True) -> None:
    """Strip (or restore) the BCE passes on every registered runtime.

    Mutates the shared ``RuntimeModel`` instances in place, so every
    cache that could hold pre-toggle results is dropped: the models'
    own compile/costing/check caches here, plus the measurement
    engine's calibration-hash memo and warm worker pool (fork workers
    inherit the registry state they were spawned with).  The
    ``REPRO_NO_BCE`` environment flag mirrors the toggle so
    freshly-spawned (non-fork) pool workers re-apply it at import
    time.
    """
    global _bce_enabled
    enabled = bool(enabled)
    if enabled == _bce_enabled:
        return
    for model in RUNTIMES.values():
        if model.compiler is None:
            continue
        passes = _DEFAULT_PASSES[model.name]
        if not enabled:
            passes = passes - {"bce", "bceloop"}
        model.compiler = dataclasses.replace(model.compiler, passes=passes)
        model._cache.clear()
        model._cycles_cache.clear()
        model._check_cache.clear()
    _bce_enabled = enabled
    if enabled:
        os.environ.pop("REPRO_NO_BCE", None)
    else:
        os.environ["REPRO_NO_BCE"] = "1"
    if _reset_engine:
        # Imported lazily — the engine module imports this one.
        from repro.core import engine as _engine

        _engine._calibration_memo.clear()
        _engine.reset_default_engine()


if os.environ.get("REPRO_NO_BCE"):
    # Honour the flag in freshly-spawned pool workers: flip the default
    # through the same path as the CLI toggle.  No engine exists this
    # early (and importing it here would be circular), so skip the
    # engine reset.
    set_bce_enabled(False, _reset_engine=False)
