"""Execution tiers and per-function tier-up for the interpreter.

The interpreter exposes three tiers (``REPRO_TIER`` / the ``tier``
constructor parameter):

* ``legacy`` — the original per-op closure dispatch;
* ``fused``  — pre-decoded superinstruction dispatch (PR 4);
* ``opt``    — fused dispatch plus the tier-2 whole-function compiler
  (:mod:`repro.runtime.vectorize`) for functions that get hot.

Tier-up is per function and profile-driven: every invocation adds the
function's instruction count to its score, and once the score crosses
``REPRO_TIER_THRESHOLD`` (default 64: one call of any non-trivial
body, a few dozen calls of a tiny one) the whole module is compiled to
tier-2 artifacts.  Artifacts are pure data, memoised on disk next to
the pre-decode plans (``.cache/profiles/tier2-<module>-<build>.json``)
and keyed on the same interpreter-build digest, so they can never
outlive the build that produced them.

Tier-2 execution is bit-identical to the other tiers by construction
(see :mod:`repro.runtime.vectorize`); ``REPRO_TIER_STRICT=1`` (set in
CI) turns any *unexpected* tier-2 compile/install failure into a hard
error instead of a silent fall-back to tier 1, mirroring what
``REPRO_FUSE_STRICT`` does for superinstruction fusion.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional

from repro.runtime import vectorize
from repro.runtime.predecode import (
    _cache_dir,
    interpreter_build_digest,
    prune_stale_artifacts,
)

#: Recognised execution tiers, slowest first.
TIERS = ("legacy", "fused", "opt")

#: Tier used when neither ``tier`` nor ``dispatch`` is requested
#: explicitly (parameter or environment).
DEFAULT_TIER = "opt"


def tier_threshold() -> int:
    """Tier-up score threshold (instruction count x invocations)."""
    try:
        return int(os.environ.get("REPRO_TIER_THRESHOLD", "64"))
    except ValueError:
        return 64


def dispatch_for_tier(tier: str) -> str:
    """The dispatch mode a tier runs on."""
    return "legacy" if tier == "legacy" else "fused"


def artifacts_for_module(module, plans, module_digest=None) -> Dict[int, dict]:
    """Tier-2 artifacts for every defined function of ``module``.

    Keys are defined-function indices.  With a ``module_digest`` the
    result is memoised on disk beside the pre-decode plans, keyed on
    the interpreter-build digest; stale entries from other builds are
    pruned whenever a fresh file is written.
    """
    path = None
    if module_digest:
        path = _cache_dir() / (
            f"tier2-{module_digest[:16]}-{interpreter_build_digest()[:8]}.json"
        )
        if path.exists():
            try:
                raw = json.loads(path.read_text())
                if raw.get("version") == vectorize.TIER2_VERSION:
                    return {int(k): v for k, v in raw["funcs"].items()}
            except (ValueError, KeyError, TypeError, OSError):
                pass  # stale/corrupt entry: recompile below
    num_imported = len(module.imports)
    artifacts: Dict[int, dict] = {}
    for index, func in enumerate(module.funcs):
        ftype = module.func_type(index + num_imported)
        local_types = [t.value for t in ftype.params] + [
            t.value for t in func.locals
        ]
        plan = plans.get(index)
        if plan is None:  # pragma: no cover - plans cover defined funcs
            from repro.runtime.predecode import plan_function

            plan = plan_function(func.body, fuse=False)
        artifacts[index] = vectorize.compile_function(
            func.body,
            plan.matches,
            local_types,
            len(ftype.params),
            len(ftype.results),
        )
    if path is not None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(
                    {
                        "version": vectorize.TIER2_VERSION,
                        "funcs": {str(k): v for k, v in artifacts.items()},
                    }
                )
            )
            prune_stale_artifacts()
        except OSError:
            pass  # read-only filesystem: artifacts still usable in-memory
    return artifacts


_MISS = object()

#: Env kinds that require a live linear memory at install time.
_MEM_KINDS = frozenset(("data", "mem", "touched", "track"))


class TierState:
    """Per-interpreter tier-up bookkeeping.

    Owns the invocation scores, the lazily compiled whole-module
    artifact set, and the installed (memory-bound) tier-2 handlers.
    """

    def __init__(self, interp) -> None:
        self._interp = interp
        self.threshold = tier_threshold()
        self.scores: Dict[int, int] = {}
        #: absolute func index -> handler, or None once known ineligible.
        self.handlers: Dict[int, Optional[Callable]] = {}
        self._artifacts: Optional[Dict[int, dict]] = None

    def artifacts(self) -> Dict[int, dict]:
        if self._artifacts is None:
            interp = self._interp
            self._artifacts = artifacts_for_module(
                interp.module, interp._plans, interp._module_digest
            )
        return self._artifacts

    def handler_for(self, func_index: int, func) -> Optional[Callable]:
        """The tier-2 handler for one function, or None.

        None means "keep dispatching on tier 1" — either the function
        is not hot enough yet, or it is outside the tier-2 shape.
        """
        cached = self.handlers.get(func_index, _MISS)
        if cached is not _MISS:
            return cached
        score = self.scores.get(func_index, 0) + max(1, len(func.body))
        if score < self.threshold:
            self.scores[func_index] = score
            return None
        handler: Optional[Callable] = None
        try:
            artifact = self.artifacts().get(
                func_index - self._interp._num_imported
            )
            if artifact is not None and artifact.get("eligible"):
                memory = self._interp.instance.memory
                needs_mem = any(
                    kind in _MEM_KINDS for _, kind, _ in artifact["env"]
                )
                if memory is not None or not needs_mem:
                    handler = vectorize.install(artifact, memory)
        except Exception:
            # Tier 1 is always a correct fallback; strict mode (CI)
            # surfaces the tier-2 bug instead of hiding it.
            if os.environ.get("REPRO_TIER_STRICT"):
                raise
            handler = None
        self.handlers[func_index] = handler
        return handler
