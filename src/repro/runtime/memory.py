"""Linear memory instances.

A :class:`LinearMemory` is the single resizable byte buffer a Wasm
module addresses (§2.1).  Besides the functional byte storage it
records the observables the timing pipeline needs:

* the set of 4 KiB OS pages touched (first-touch faults for the
  demand-paging simulation);
* a list of :class:`MemoryEvent` entries (grow operations), which the
  harness replays through the simulated kernel per iteration.

Bounds behaviour is delegated to a
:class:`~repro.runtime.strategies.BoundsStrategy`; the access helpers
enforce the 8 GiB architectural limit (32-bit base + 32-bit offset)
that makes the guard-region approach sound.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.oskernel.layout import GUARD_REGION_BYTES, PAGE_SIZE, WASM_PAGE_SIZE
from repro.runtime.strategies import BoundsStrategy, strategy_named
from repro.wasm.errors import Trap
from repro.wasm.types import Limits

#: Hard ceiling from the spec: memories are at most 2**16 pages (4 GiB).
MAX_WASM_PAGES = 1 << 16


@dataclass(frozen=True)
class MemoryEvent:
    """One memory-management event observed during execution."""

    kind: str  # 'grow'
    pages_before: int
    pages_after: int
    #: Memory-tagging granules retagged by this event (MTE strategies
    #: only; 0 when the strategy has no tag granule).  Grow under MTE
    #: must tag every new granule before the bytes become addressable,
    #: and this is the count the kernel replay charges for.
    granules: int = 0


class LinearMemory:
    """One linear memory instance."""

    def __init__(
        self,
        limits: Limits,
        strategy: Optional[BoundsStrategy] = None,
        track_pages: bool = True,
        memory64: bool = False,
    ) -> None:
        if limits.minimum > MAX_WASM_PAGES:
            raise Trap("memory-too-large", f"{limits.minimum} pages exceeds 2**16")
        self.limits = limits
        self.strategy = strategy or strategy_named("trap")
        #: 64-bit memory (wasm64): indices are u64, so no guard region
        #: can cover the addressable range.  Implied by a 64-bit
        #: strategy; may also be requested explicitly.
        self.memory64 = bool(memory64) or self.strategy.addr_bits == 64
        if self.memory64 and self.strategy.uses_guard_region:
            raise ValueError(
                f"strategy {self.strategy.name!r} relies on the 8 GiB guard "
                "region, which cannot cover a 64-bit (wasm64) memory; use an "
                "explicit-check strategy (trap/clamp/wasm64) or mte instead"
            )
        self.pages = limits.minimum
        self.data = bytearray(self.pages * WASM_PAGE_SIZE)
        self.track_pages = track_pages
        #: 4 KiB page indices touched since the last reset_tracking().
        self.touched_pages: set[int] = set()
        self.events: List[MemoryEvent] = []
        self.load_count = 0
        self.store_count = 0

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.pages * WASM_PAGE_SIZE

    @property
    def max_pages(self) -> int:
        declared = self.limits.maximum
        return MAX_WASM_PAGES if declared is None else min(declared, MAX_WASM_PAGES)

    def grow(self, delta_pages: int) -> int:
        """memory.grow semantics: returns old size in pages, or -1."""
        if delta_pages < 0:
            return -1
        new_pages = self.pages + delta_pages
        if new_pages > self.max_pages:
            return -1
        old_pages = self.pages
        if delta_pages == 0:
            # A zero-delta grow is a pure size query per the spec: no
            # mapping changes, so nothing for the kernel replay to do.
            return old_pages
        granule = self.strategy.tag_granule
        granules = (delta_pages * WASM_PAGE_SIZE) // granule if granule else 0
        self.events.append(
            MemoryEvent("grow", old_pages, new_pages, granules=granules)
        )
        self.pages = new_pages
        self.data.extend(bytes(delta_pages * WASM_PAGE_SIZE))
        return old_pages

    def reset_tracking(self) -> None:
        self.touched_pages.clear()
        self.events.clear()
        self.load_count = 0
        self.store_count = 0

    # ------------------------------------------------------------------
    # Access helpers.  ``address`` is the effective address (base+offset,
    # both u32, so always < 8 GiB by construction).
    # ------------------------------------------------------------------
    def _check(self, address: int, size: int, write: bool) -> int:
        """Bounds-check an access; returns the effective address to use."""
        if address + size <= self.size_bytes:
            return address
        if not self.memory64 and address + size > GUARD_REGION_BYTES:
            # u32 base + u32 offset caps at 8 GiB; a 64-bit memory has
            # no such architectural ceiling, so its strategy (always an
            # explicit check) decides below instead.
            raise Trap("out-of-bounds-memory", "beyond the 8 GiB guard region")
        clamped = self.strategy.on_out_of_bounds(
            address, size, self.size_bytes, write
        )
        if clamped is None:
            return -1  # 'none': absorbed by the RW guard mapping
        return clamped

    def _touch(self, address: int, size: int) -> None:
        first = address >> 12  # PAGE_SIZE == 4096
        last = (address + size - 1) >> 12
        if first == last:
            self.touched_pages.add(first)
        else:
            # Accesses can span many pages (data-segment initialisation,
            # WASI writes); every page in the range is first-touched.
            self.touched_pages.update(range(first, last + 1))

    def touch_range(self, address: int, size: int) -> None:
        """Record first-touch pages for a raw ranged write.

        Used by instantiation-time writes (data segments) that bypass
        the checked ``store_bytes`` path.
        """
        if self.track_pages and size > 0:
            self._touch(address, size)

    def load_bytes(self, address: int, size: int) -> bytes:
        self.load_count += 1
        effective = self._check(address, size, write=False)
        if effective < 0:
            return bytes(size)
        if self.track_pages:
            self._touch(effective, size)
        return bytes(self.data[effective : effective + size])

    def store_bytes(self, address: int, raw: bytes) -> None:
        self.store_count += 1
        effective = self._check(address, len(raw), write=True)
        if effective < 0:
            return  # 'none': write lands in the guard scratch area
        if self.track_pages:
            self._touch(effective, len(raw))
        self.data[effective : effective + len(raw)] = raw

    # ------------------------------------------------------------------
    # Bulk operations (memory.fill / memory.copy / data-segment init).
    # One ranged access counts as one load/store: the paper's bounds
    # check is per memory *instruction*, not per byte, and the bulk op
    # issues a single range-checked access.
    # ------------------------------------------------------------------
    def fill(self, dest: int, value: int, length: int) -> None:
        """memory.fill: set ``length`` bytes at ``dest`` to ``value``.

        Vectorised through one bytearray slice assignment.  Zero-length
        fills are still bounds-checked (the spec traps on d > size even
        when n == 0; our strategies see the same (addr, 0) access).
        """
        self.store_count += 1
        effective = self._check(dest, length, write=True)
        if effective < 0:
            return  # 'none': absorbed by the guard mapping
        # A clamping strategy may relocate the access; never write past
        # the end of the buffer from a clamped base.
        n = min(length, self.size_bytes - effective)
        if n <= 0:
            return
        if self.track_pages:
            self._touch(effective, n)
        self.data[effective : effective + n] = bytes([value & 0xFF]) * n

    def copy(self, dest: int, src: int, length: int) -> None:
        """memory.copy: overlap-safe move of ``length`` bytes.

        Both ranges are bounds-checked before any byte moves (spec
        order); the move itself is one memoryview snapshot plus one
        slice assignment, so overlapping ranges behave like memmove.
        """
        self.load_count += 1
        self.store_count += 1
        src_eff = self._check(src, length, write=False)
        dest_eff = self._check(dest, length, write=True)
        if src_eff < 0 or dest_eff < 0:
            return
        n = min(length, self.size_bytes - src_eff, self.size_bytes - dest_eff)
        if n <= 0:
            return
        if self.track_pages:
            self._touch(src_eff, n)
            self._touch(dest_eff, n)
        chunk = bytes(memoryview(self.data)[src_eff : src_eff + n])
        self.data[dest_eff : dest_eff + n] = chunk

    def init_data(self, offset: int, payload: bytes) -> None:
        """Instantiation-time data-segment write (pre-bounds-checked).

        Bypasses the strategy and the load/store counters — segment
        initialisation is not an executed memory instruction — but
        records first-touch pages exactly like the checked paths.
        """
        self.data[offset : offset + len(payload)] = payload
        self.touch_range(offset, len(payload))

    # -- typed accessors (used by instantiation, host code and tests) ------
    def load_u32(self, address: int) -> int:
        return int.from_bytes(self.load_bytes(address, 4), "little")

    def store_u32(self, address: int, value: int) -> None:
        self.store_bytes(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def load_u64(self, address: int) -> int:
        return int.from_bytes(self.load_bytes(address, 8), "little")

    def store_u64(self, address: int, value: int) -> None:
        self.store_bytes(address, (value & (2**64 - 1)).to_bytes(8, "little"))

    def load_f32(self, address: int) -> float:
        return struct.unpack("<f", self.load_bytes(address, 4))[0]

    def store_f32(self, address: int, value: float) -> None:
        self.store_bytes(address, struct.pack("<f", value))

    def load_f64(self, address: int) -> float:
        return struct.unpack("<d", self.load_bytes(address, 8))[0]

    def store_f64(self, address: int, value: float) -> None:
        self.store_bytes(address, struct.pack("<d", value))
