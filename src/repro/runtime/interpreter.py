"""A closure-threaded WebAssembly interpreter.

Functions are pre-compiled to lists of Python closures, one per
instruction, each returning the next program counter — the Python
analogue of the threaded-code dispatch Wasm3 uses (paper §2.2, ref.
[1]).  The interpreter serves three roles:

1. **reference semantics** — the full numeric tower (wrap-around
   integer arithmetic, trapping division, IEEE float edge cases,
   f32 rounding) against which the compiled-code model is
   differentially tested;
2. **the Wasm3 runtime model** — interpreter timing comes from dynamic
   opcode counts priced with a dispatch-cost model;
3. **the profiler** — when ``collect_profile`` is on, it records exact
   per-pc execution counts plus memory observables, producing the
   :class:`~repro.runtime.profile.ExecutionProfile` every other
   runtime model is costed from.

Value conventions: i32/i64 are canonical *unsigned* Python ints
(0 ≤ v < 2**N); f32/f64 are Python floats, with f32 results rounded
through single precision.

Dispatch modes (``dispatch=`` / ``REPRO_DISPATCH``):

* ``fused`` (default) — pre-decoded handler table with superinstruction
  fusion (:mod:`repro.runtime.predecode`) and struct-based fast memory
  closures; bit-identical observables to the other modes.
* ``nofuse`` — fast memory closures but one handler per instruction;
  the bisection mode behind ``leaps-bench diffcheck --no-fuse``.
* ``legacy`` — the original one-closure-per-op build, kept verbatim so
  ``benchmarks/interp_bench.py`` can measure the fast path against the
  pre-rewrite interpreter on the same machine.

Execution tiers (``tier=`` / ``REPRO_TIER``, see
:mod:`repro.runtime.tiering`): ``legacy`` and ``fused`` map onto the
dispatch modes above; ``opt`` (the default when neither tier nor
dispatch is requested explicitly) additionally compiles hot functions
to tier-2 vectorized Python (:mod:`repro.runtime.vectorize`) with
bit-identical observables.  An explicit ``dispatch`` request without a
tier disables tier-2 so dispatch comparisons measure dispatch alone.
"""

from __future__ import annotations

import math
import os
import struct
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.runtime import predecode, tiering
from repro.runtime.memory import LinearMemory
from repro.runtime.profile import ExecutionProfile
from repro.runtime.strategies import BoundsStrategy, strategy_named
from repro.wasm.coverage import COVERAGE as _COVERAGE
from repro.wasm.errors import ExhaustionError, LinkError, Trap
from repro.wasm.instructions import Instr
from repro.wasm.module import Function, Module
from repro.wasm.types import FuncType, ValType
from repro.wasm.validator import validate_module

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF

# Each simulated wasm call consumes a handful of Python frames; raise
# CPython's limit once at import so the interpreter's own depth guard
# (_MAX_CALL_DEPTH) always fires first.
if sys.getrecursionlimit() < 20_000:
    sys.setrecursionlimit(20_000)
_NAN = float("nan")
_INF = float("inf")


# ----------------------------------------------------------------------
# Numeric helpers
# ----------------------------------------------------------------------
def s32(v: int) -> int:
    return v - 0x1_0000_0000 if v & 0x8000_0000 else v


def s64(v: int) -> int:
    return v - 0x1_0000_0000_0000_0000 if v & 0x8000_0000_0000_0000 else v


def to_f32(x: float) -> float:
    """Round a Python float through IEEE single precision."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _trunc_rem(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


def _clz(v: int, bits: int) -> int:
    return bits - v.bit_length()


def _ctz(v: int, bits: int) -> int:
    if v == 0:
        return bits
    return (v & -v).bit_length() - 1


def _rotl(v: int, n: int, bits: int, mask: int) -> int:
    n %= bits
    return ((v << n) | (v >> (bits - n))) & mask if n else v


def _rotr(v: int, n: int, bits: int, mask: int) -> int:
    n %= bits
    return ((v >> n) | (v << (bits - n))) & mask if n else v


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if math.isnan(a) or a == 0.0:
            return _NAN
        return math.copysign(_INF, a) * math.copysign(1.0, b)
    return a / b


def _fmin(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return _NAN
    if a == b:
        # min(-0, +0) is -0.
        return a if math.copysign(1.0, a) < 0 else b
    return a if a < b else b


def _fmax(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return _NAN
    if a == b:
        return a if math.copysign(1.0, a) > 0 else b
    return a if a > b else b


def _fsqrt(x: float) -> float:
    if math.isnan(x) or x < 0.0:
        return _NAN
    return math.sqrt(x)


def _fnearest(x: float) -> float:
    if math.isnan(x) or math.isinf(x) or abs(x) >= 2.0**52:
        return x
    rounded = float(round(x))
    if rounded == 0.0 and math.copysign(1.0, x) < 0:
        return -0.0
    return rounded


def _ffloor(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return x
    return float(math.floor(x))


def _fceil(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return x
    result = float(math.ceil(x))
    if result == 0.0 and math.copysign(1.0, x) < 0:
        return -0.0
    return result


def _ftrunc(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return x
    result = float(math.trunc(x))
    if result == 0.0 and math.copysign(1.0, x) < 0:
        return -0.0
    return result


def _trunc_to_int(x: float, lo: int, hi: int) -> int:
    if math.isnan(x):
        raise Trap("invalid-conversion-to-integer", "truncation of NaN")
    if math.isinf(x):
        raise Trap("integer-overflow", "truncation of infinity")
    t = math.trunc(x)
    if not lo <= t <= hi:
        raise Trap("integer-overflow", f"{x} out of range [{lo},{hi}]")
    return t


# ----------------------------------------------------------------------
# Host functions and instances
# ----------------------------------------------------------------------
@dataclass
class HostFunc:
    """A function provided by the embedder (e.g. a WASI shim)."""

    params: Tuple[ValType, ...]
    results: Tuple[ValType, ...]
    fn: Callable[..., Any]
    name: str = ""

    @property
    def func_type(self) -> FuncType:
        return FuncType(self.params, self.results)


class Instance:
    """Runtime state of an instantiated module."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.memory: Optional[LinearMemory] = None
        self.globals: List[Any] = []
        self.table: List[Optional[int]] = []
        #: absolute func index -> ('wasm', Function) | ('host', HostFunc)
        self.funcs: List[Tuple[str, Union[Function, HostFunc]]] = []


_MAX_CALL_DEPTH = 500

#: Valid values for Interpreter(dispatch=...) / $REPRO_DISPATCH.
DISPATCH_MODES = ("fused", "nofuse", "legacy")


class Interpreter:
    """Instantiate and execute one module."""

    def __init__(
        self,
        module: Module,
        imports: Optional[Dict[Tuple[str, str], HostFunc]] = None,
        strategy: Union[BoundsStrategy, str, None] = None,
        validate: bool = True,
        collect_profile: bool = True,
        track_pages: bool = True,
        dispatch: Optional[str] = None,
        module_digest: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> None:
        if validate:
            validate_module(module)
        if isinstance(strategy, str):
            strategy = strategy_named(strategy)
        self.strategy = strategy or strategy_named("trap")
        self.module = module
        self.collect_profile = collect_profile
        # Tier/dispatch resolution.  An *explicit* dispatch request
        # (param or $REPRO_DISPATCH) without a tier keeps the exact
        # pre-tiering semantics — no tier-2 — so dispatch-mode
        # comparisons still measure dispatch alone.  Otherwise the tier
        # (param, $REPRO_TIER, or the "opt" default) picks the dispatch
        # mode and, for "opt", arms per-function tier-up.
        if tier is None:
            tier = os.environ.get("REPRO_TIER") or None
        if tier is not None and tier not in tiering.TIERS:
            raise ValueError(f"unknown tier {tier!r}")
        if dispatch is None:
            dispatch = os.environ.get("REPRO_DISPATCH") or None
        if tier is None and dispatch is None:
            tier = tiering.DEFAULT_TIER
        if dispatch is None:
            dispatch = tiering.dispatch_for_tier(tier)
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        self.dispatch = dispatch
        self.tier = tier if tier is not None else (
            "legacy" if dispatch == "legacy" else "fused"
        )
        self._module_digest = module_digest
        self._num_imported = len(module.imports)
        if dispatch == "legacy":
            self._plans: Dict[int, predecode.FunctionPlan] = {}
        else:
            # Pre-decode every body once at module load; with a module
            # digest the fused plan is memoised in .cache/profiles/.
            self._plans = predecode.plans_for_module(
                module, module_digest=module_digest, fuse=dispatch == "fused"
            )
        #: absolute func index -> fusion regions applied to its code.
        self._fused_regions: Dict[int, List[predecode.FusedRegion]] = {}
        self.instance = self._instantiate(imports or {}, track_pages)
        self._code_cache: Dict[int, List[Callable]] = {}
        self._counts: Dict[int, List[int]] = {}
        #: func index -> op name per pc, built lazily for edge coverage.
        self._op_names: Dict[int, List[str]] = {}
        self._depth = 0
        self._tiering = (
            tiering.TierState(self)
            if self.tier == "opt" and dispatch == "fused"
            else None
        )
        if module.start is not None:
            self.call_function(module.start, [])

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def _instantiate(self, imports, track_pages: bool) -> Instance:
        module = self.module
        inst = Instance(module)
        for imp in module.imports:
            if imp.kind != "func":
                raise LinkError(f"unsupported import kind {imp.kind!r}")
            host = imports.get((imp.module, imp.name))
            if host is None:
                raise LinkError(f"unresolved import {imp.module}.{imp.name}")
            declared = module.type_at(imp.desc)
            if host.func_type != declared:
                raise LinkError(
                    f"import {imp.module}.{imp.name}: host type {host.func_type} "
                    f"!= declared {declared}"
                )
            inst.funcs.append(("host", host))
        for func in module.funcs:
            inst.funcs.append(("wasm", func))
        for glob in module.globals:
            inst.globals.append(self._eval_const(glob.init, inst))
        if module.memories:
            inst.memory = LinearMemory(
                module.memories[0].limits, self.strategy, track_pages=track_pages
            )
        if module.tables:
            inst.table = [None] * module.tables[0].limits.minimum
        for element in module.elements:
            offset = self._eval_const(element.offset, inst)
            if offset + len(element.func_indices) > len(inst.table):
                raise LinkError("element segment out of table bounds")
            for position, func_index in enumerate(element.func_indices):
                inst.table[offset + position] = func_index
        for segment in module.data:
            if inst.memory is None:
                raise LinkError("data segment with no memory")
            offset = self._eval_const(segment.offset, inst)
            if offset + len(segment.data) > inst.memory.size_bytes:
                raise LinkError("data segment out of memory bounds")
            inst.memory.init_data(offset, segment.data)
        return inst

    def _eval_const(self, expr: List[Instr], inst: Instance) -> Any:
        ins = expr[0]
        if ins.op == "i32.const":
            return ins.args[0] & M32
        if ins.op == "i64.const":
            return ins.args[0] & M64
        if ins.op == "f32.const":
            return to_f32(ins.args[0])
        if ins.op == "f64.const":
            return float(ins.args[0])
        if ins.op == "global.get":
            return inst.globals[ins.args[0]]
        raise LinkError(f"unsupported constant expression {ins.op}")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def invoke(self, export_name: str, *args) -> Any:
        """Call an exported function; returns its (single) result."""
        export = self.module.export_named(export_name)
        if export.kind != "func":
            raise LinkError(f"export {export_name!r} is a {export.kind}, not a func")
        results = self.call_function(export.index, list(args))
        if not results:
            return None
        if len(results) == 1:
            return results[0]
        return tuple(results)

    @property
    def memory(self) -> Optional[LinearMemory]:
        return self.instance.memory

    def call_function(self, func_index: int, args: Sequence[Any]) -> List[Any]:
        kind, target = self.instance.funcs[func_index]
        if kind == "host":
            results = target.fn(*args)
            if results is None:
                return []
            if isinstance(results, (list, tuple)):
                return list(results)
            return [results]
        func_type = self.module.func_type(func_index)
        if len(args) != len(func_type.params):
            raise LinkError(
                f"function {func_index} expects {len(func_type.params)} args, "
                f"got {len(args)}"
            )
        norm_args = [
            self._normalize(value, valtype)
            for value, valtype in zip(args, func_type.params)
        ]
        return self._run(func_index, target, func_type, norm_args)

    @staticmethod
    def _normalize(value: Any, valtype: ValType) -> Any:
        if valtype == ValType.I32:
            return int(value) & M32
        if valtype == ValType.I64:
            return int(value) & M64
        if valtype == ValType.F32:
            return to_f32(float(value))
        return float(value)

    def take_profile(self, workload: str = "", size: str = "") -> ExecutionProfile:
        """Build an ExecutionProfile from counts gathered so far."""
        profile = ExecutionProfile(workload=workload, size=size)
        op_totals: Dict[str, int] = {}
        for func_index, raw_counts in self._counts.items():
            func = self.module.defined_func(func_index)
            counts = list(raw_counts)
            # Under fused dispatch only a region's head pc is counted.
            # Interior pcs execute exactly when the head does (they are
            # never jump targets, and only the region's last op can
            # trap — and an unfused trap still counts the trapping pc),
            # so their exact counts are the head's count.
            for region in self._fused_regions.get(func_index, ()):
                head_count = counts[region.head]
                if head_count:
                    for tail_pc in region.tail_pcs:
                        counts[tail_pc] = head_count
            profile.instr_counts[func_index] = counts
            for ins, count in zip(func.body, counts):
                if count:
                    op_totals[ins.op] = op_totals.get(ins.op, 0) + count
        profile.op_totals = op_totals
        profile.merge_totals()
        memory = self.instance.memory
        if memory is not None:
            profile.mem_loads = memory.load_count
            profile.mem_stores = memory.store_count
            profile.pages_touched = len(memory.touched_pages)
            profile.grow_events = [
                (event.pages_before, event.pages_after) for event in memory.events
            ]
            profile.peak_pages = memory.pages
        return profile

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(
        self,
        func_index: int,
        func: Function,
        func_type: FuncType,
        args: List[Any],
    ) -> List[Any]:
        self._depth += 1
        if self._depth > _MAX_CALL_DEPTH:
            self._depth -= 1
            raise ExhaustionError("call stack exhausted")
        try:
            code = self._code_cache.get(func_index)
            if code is None:
                code = self._compile(func_index, func)
                self._code_cache[func_index] = code
                if self.collect_profile:
                    self._counts[func_index] = [0] * len(code)
            frame = _Frame(args + _default_locals(func.locals))
            n = len(code)
            # The function body itself is a branch target (depth ==
            # number of open blocks): branching to it returns.
            frame.labels.append((n, 0, len(func_type.results)))
            state = self._tiering
            if state is not None:
                handler = state.handler_for(func_index, func)
                if handler is not None and (
                    handler(
                        frame,
                        self._counts[func_index]
                        if self.collect_profile
                        else None,
                    )
                    < 0
                ):
                    if _COVERAGE.enabled:
                        record = _COVERAGE.dispatch
                        record[("^call", "^tier2")] = (
                            record.get(("^call", "^tier2"), 0) + 1
                        )
                    arity = len(func_type.results)
                    return frame.stack[-arity:] if arity else []
                # handler returned 0: entry guard failed (deopt);
                # the frame is untouched, run the whole call on tier 1.
            pc = 0
            if _COVERAGE.enabled:
                return self._run_traced(func_index, func, func_type, frame, code, n)
            if self.collect_profile:
                counts = self._counts[func_index]
                while pc < n:
                    counts[pc] += 1
                    pc = code[pc](frame)
            else:
                while pc < n:
                    pc = code[pc](frame)
            arity = len(func_type.results)
            return frame.stack[-arity:] if arity else []
        finally:
            self._depth -= 1

    def _run_traced(
        self,
        func_index: int,
        func: Function,
        func_type: FuncType,
        frame: "_Frame",
        code: List[Callable],
        n: int,
    ) -> List[Any]:
        """The dispatch loop with handler-edge recording.

        Semantically identical to the loops in :meth:`_run` (the same
        ``pc = code[pc](frame)`` walk, plus ``(prev, current)`` edge
        counters over the dispatched handlers' op names).  Terminal
        edges: ``^return`` for normal completion, ``^trap`` for a trap
        escaping the loop.  Under fused dispatch only region-head pcs
        are dispatched, so edges describe the fused handler stream —
        exactly what this loop executes.
        """
        record = _COVERAGE.dispatch
        names = self._op_names.get(func_index)
        if names is None:
            names = [ins.op for ins in func.body]
            self._op_names[func_index] = names
        counts = self._counts[func_index] if self.collect_profile else None
        prev = "^call"
        pc = 0
        try:
            while pc < n:
                if counts is not None:
                    counts[pc] += 1
                op = names[pc]
                edge = (prev, op)
                record[edge] = record.get(edge, 0) + 1
                prev = op
                pc = code[pc](frame)
        except Trap:
            edge = (prev, "^trap")
            record[edge] = record.get(edge, 0) + 1
            raise
        edge = (prev, "^return")
        record[edge] = record.get(edge, 0) + 1
        arity = len(func_type.results)
        return frame.stack[-arity:] if arity else []

    # ------------------------------------------------------------------
    # Compilation to closures
    # ------------------------------------------------------------------
    def _compile(self, func_index: int, func: Function) -> List[Callable]:
        body = func.body
        if self.dispatch == "legacy":
            matches = _match_control(body)
            return [
                self._make_closure(pc, ins, matches, len(body))
                for pc, ins in enumerate(body)
            ]
        plan = self._plans.get(func_index - self._num_imported)
        if plan is None:  # pragma: no cover - plans cover all defined funcs
            plan = predecode.plan_function(body, fuse=self.dispatch == "fused")
        matches = plan.matches
        code = [
            self._make_closure(pc, ins, matches, len(body), fast_mem=True)
            for pc, ins in enumerate(body)
        ]
        if self.dispatch == "fused":
            applied: List[predecode.FusedRegion] = []
            for region in plan.regions:
                handler = self._make_fused(region, body)
                if handler is not None:
                    code[region.head] = handler
                    applied.append(region)
            if applied:
                self._fused_regions[func_index] = applied
        return code

    # ------------------------------------------------------------------
    # Superinstruction handlers (fused dispatch)
    # ------------------------------------------------------------------
    def _make_fused(
        self, region: predecode.FusedRegion, body: Sequence[Instr]
    ) -> Optional[Callable]:
        """Compile one region into a single Python handler, or None.

        Returning None leaves the region unfused (every pc dispatches
        its ordinary closure), which is always semantically safe.
        """
        try:
            return _gen_region(region, body, self.instance.memory, len(body))
        except Exception:
            # Falling back to per-op dispatch is always semantically
            # safe; REPRO_FUSE_STRICT=1 (set in CI) surfaces the bug.
            if os.environ.get("REPRO_FUSE_STRICT"):
                raise
            return None

    def _make_closure(self, pc, ins, matches, body_len, fast_mem=False):
        op = ins.op
        next_pc = pc + 1
        inst = self.instance
        memory = inst.memory
        globals_ = inst.globals

        # ---- control -------------------------------------------------
        if op == "nop":
            return lambda f: next_pc
        if op == "unreachable":
            def run_unreachable(f):
                raise Trap("unreachable")
            return run_unreachable
        if op in ("block", "loop", "if"):
            end_pc, else_pc = matches[pc]
            arity = 0 if ins.args[0] is None else 1
            if op == "block":
                target = end_pc + 1

                def run_block(f, target=target, arity=arity):
                    f.labels.append((target, len(f.stack), arity))
                    return next_pc

                return run_block
            if op == "loop":
                def run_loop(f, target=pc):
                    f.labels.append((target, len(f.stack), 0))
                    return next_pc

                return run_loop
            # if
            target = end_pc + 1
            else_target = else_pc + 1 if else_pc is not None else end_pc

            def run_if(f, target=target, arity=arity, else_target=else_target):
                cond = f.stack.pop()
                f.labels.append((target, len(f.stack), arity))
                return next_pc if cond else else_target

            return run_if
        if op == "else":
            end_pc = matches[pc]

            def run_else(f, end_pc=end_pc):
                return end_pc  # jump to 'end', which pops the label

            return run_else
        if op == "end":
            def run_end(f):
                f.labels.pop()
                return next_pc

            return run_end
        if op == "br":
            depth = ins.args[0]

            def run_br(f, depth=depth):
                return _branch(f, depth)

            return run_br
        if op == "br_if":
            depth = ins.args[0]

            def run_br_if(f, depth=depth):
                if f.stack.pop():
                    return _branch(f, depth)
                return next_pc

            return run_br_if
        if op == "br_table":
            labels, default = ins.args

            def run_br_table(f, labels=labels, default=default):
                index = f.stack.pop()
                depth = labels[index] if index < len(labels) else default
                return _branch(f, depth)

            return run_br_table
        if op == "return":
            return lambda f: body_len
        if op == "call":
            callee = ins.args[0]
            nparams = len(self.module.func_type(callee).params)

            def run_call(f, callee=callee, nparams=nparams):
                if nparams:
                    args = f.stack[-nparams:]
                    del f.stack[-nparams:]
                else:
                    args = []
                f.stack.extend(self.call_function(callee, args))
                return next_pc

            return run_call
        if op == "call_indirect":
            type_index, _table = ins.args
            expected = self.module.type_at(type_index)
            nparams = len(expected.params)

            def run_call_indirect(f, expected=expected, nparams=nparams):
                element = f.stack.pop()
                table = inst.table
                if element >= len(table):
                    raise Trap("undefined-element", f"table index {element}")
                callee = table[element]
                if callee is None:
                    raise Trap("uninitialized-element", f"table slot {element}")
                actual = self.module.func_type(callee)
                if actual != expected:
                    raise Trap(
                        "indirect-call-type-mismatch",
                        f"{actual} != {expected}",
                    )
                if nparams:
                    args = f.stack[-nparams:]
                    del f.stack[-nparams:]
                else:
                    args = []
                f.stack.extend(self.call_function(callee, args))
                return next_pc

            return run_call_indirect

        # ---- parametric ------------------------------------------------
        if op == "drop":
            def run_drop(f):
                f.stack.pop()
                return next_pc

            return run_drop
        if op == "select":
            def run_select(f):
                stack = f.stack
                cond = stack.pop()
                second = stack.pop()
                first = stack.pop()
                stack.append(first if cond else second)
                return next_pc

            return run_select

        # ---- variables ---------------------------------------------------
        if op == "local.get":
            index = ins.args[0]

            def run_local_get(f, index=index):
                f.stack.append(f.locals[index])
                return next_pc

            return run_local_get
        if op == "local.set":
            index = ins.args[0]

            def run_local_set(f, index=index):
                f.locals[index] = f.stack.pop()
                return next_pc

            return run_local_set
        if op == "local.tee":
            index = ins.args[0]

            def run_local_tee(f, index=index):
                f.locals[index] = f.stack[-1]
                return next_pc

            return run_local_tee
        if op == "global.get":
            index = ins.args[0]

            def run_global_get(f, index=index):
                f.stack.append(globals_[index])
                return next_pc

            return run_global_get
        if op == "global.set":
            index = ins.args[0]

            def run_global_set(f, index=index):
                globals_[index] = f.stack.pop()
                return next_pc

            return run_global_set

        # ---- constants ------------------------------------------------------
        if op == "i32.const":
            value = ins.args[0] & M32
            return lambda f, value=value: (f.stack.append(value), next_pc)[1]
        if op == "i64.const":
            value = ins.args[0] & M64
            return lambda f, value=value: (f.stack.append(value), next_pc)[1]
        if op == "f32.const":
            value = to_f32(float(ins.args[0]))
            return lambda f, value=value: (f.stack.append(value), next_pc)[1]
        if op == "f64.const":
            value = float(ins.args[0])
            return lambda f, value=value: (f.stack.append(value), next_pc)[1]

        # ---- memory ------------------------------------------------------------
        if ins.info.category == "load":
            if fast_mem:
                return _make_fast_load(op, ins.args[1], memory, next_pc)
            return _make_load(op, ins.args[1], memory, next_pc)
        if ins.info.category == "store":
            if fast_mem:
                return _make_fast_store(op, ins.args[1], memory, next_pc)
            return _make_store(op, ins.args[1], memory, next_pc)
        if op == "memory.fill":
            def run_memory_fill(f):
                stack = f.stack
                length = stack.pop()
                value = stack.pop()
                memory.fill(stack.pop(), value, length)
                return next_pc

            return run_memory_fill
        if op == "memory.copy":
            def run_memory_copy(f):
                stack = f.stack
                length = stack.pop()
                src = stack.pop()
                memory.copy(stack.pop(), src, length)
                return next_pc

            return run_memory_copy
        if op == "memory.size":
            def run_memory_size(f):
                f.stack.append(memory.pages)
                return next_pc

            return run_memory_size
        if op == "memory.grow":
            def run_memory_grow(f):
                delta = f.stack.pop()
                f.stack.append(memory.grow(delta) & M32)
                return next_pc

            return run_memory_grow

        # ---- numeric: table-driven -------------------------------------------------
        unop = _UNOPS.get(op)
        if unop is not None:
            def run_unop(f, unop=unop):
                stack = f.stack
                stack[-1] = unop(stack[-1])
                return next_pc

            return run_unop
        binop = _BINOPS.get(op)
        if binop is not None:
            def run_binop(f, binop=binop):
                stack = f.stack
                b = stack.pop()
                stack[-1] = binop(stack[-1], b)
                return next_pc

            return run_binop
        raise NotImplementedError(f"no interpreter support for {op}")  # pragma: no cover


class _Frame:
    __slots__ = ("stack", "locals", "labels")

    def __init__(self, locals_: List[Any]) -> None:
        self.stack: List[Any] = []
        self.locals = locals_
        self.labels: List[Tuple[int, int, int]] = []


def _default_locals(locals_: List[ValType]) -> List[Any]:
    return [0.0 if valtype.is_float else 0 for valtype in locals_]


def _branch(f: _Frame, depth: int) -> int:
    target, height, arity = f.labels[-1 - depth]
    del f.labels[len(f.labels) - 1 - depth :]
    stack = f.stack
    if arity:
        carried = stack[-arity:]
        del stack[height:]
        stack.extend(carried)
    else:
        del stack[height:]
    return target


def _match_control(body: List[Instr]):
    """Map each block/loop/if pc to (end_pc, else_pc); else pc to end_pc."""
    matches: Dict[int, Any] = {}
    stack: List[Tuple[int, Optional[int]]] = []
    for pc, ins in enumerate(body):
        op = ins.op
        if op in ("block", "loop", "if"):
            stack.append((pc, None))
        elif op == "else":
            opener, _ = stack.pop()
            stack.append((opener, pc))
        elif op == "end":
            opener, else_pc = stack.pop()
            matches[opener] = (pc, else_pc)
            if else_pc is not None:
                matches[else_pc] = pc
    return matches


# ----------------------------------------------------------------------
# Memory closures
# ----------------------------------------------------------------------
_LOAD_INT = {
    "i32.load": (4, False, 32),
    "i64.load": (8, False, 64),
    "i32.load8_s": (1, True, 32),
    "i32.load8_u": (1, False, 32),
    "i32.load16_s": (2, True, 32),
    "i32.load16_u": (2, False, 32),
    "i64.load8_s": (1, True, 64),
    "i64.load8_u": (1, False, 64),
    "i64.load16_s": (2, True, 64),
    "i64.load16_u": (2, False, 64),
    "i64.load32_s": (4, True, 64),
    "i64.load32_u": (4, False, 64),
}

_STORE_INT = {
    "i32.store": 4,
    "i64.store": 8,
    "i32.store8": 1,
    "i32.store16": 2,
    "i64.store8": 1,
    "i64.store16": 2,
    "i64.store32": 4,
}


def _make_load(op: str, offset: int, memory: LinearMemory, next_pc: int):
    if memory is None:  # pragma: no cover - validation prevents this
        raise LinkError(f"{op} with no memory")
    if op == "f32.load":
        def run_f32_load(f):
            stack = f.stack
            stack[-1] = struct.unpack("<f", memory.load_bytes(stack[-1] + offset, 4))[0]
            return next_pc

        return run_f32_load
    if op == "f64.load":
        def run_f64_load(f):
            stack = f.stack
            stack[-1] = struct.unpack("<d", memory.load_bytes(stack[-1] + offset, 8))[0]
            return next_pc

        return run_f64_load
    size, signed, bits = _LOAD_INT[op]
    mask = M32 if bits == 32 else M64

    def run_int_load(f, size=size, signed=signed, mask=mask):
        stack = f.stack
        raw = memory.load_bytes(stack[-1] + offset, size)
        value = int.from_bytes(raw, "little", signed=signed)
        stack[-1] = value & mask
        return next_pc

    return run_int_load


def _make_store(op: str, offset: int, memory: LinearMemory, next_pc: int):
    if memory is None:  # pragma: no cover - validation prevents this
        raise LinkError(f"{op} with no memory")
    if op == "f32.store":
        def run_f32_store(f):
            stack = f.stack
            value = stack.pop()
            memory.store_bytes(stack.pop() + offset, struct.pack("<f", to_f32(value)))
            return next_pc

        return run_f32_store
    if op == "f64.store":
        def run_f64_store(f):
            stack = f.stack
            value = stack.pop()
            memory.store_bytes(stack.pop() + offset, struct.pack("<d", value))
            return next_pc

        return run_f64_store
    size = _STORE_INT[op]
    mask = (1 << (size * 8)) - 1

    def run_int_store(f, size=size, mask=mask):
        stack = f.stack
        value = stack.pop() & mask
        memory.store_bytes(stack.pop() + offset, value.to_bytes(size, "little"))
        return next_pc

    return run_int_store


# ----------------------------------------------------------------------
# Fast memory closures (fused / nofuse dispatch)
#
# Same observables as load_bytes/store_bytes — load/store counters,
# touched-page sets, strategy-defined OOB behaviour — but the in-bounds
# path unpacks straight out of the backing bytearray with a
# pre-compiled struct.Struct, skipping the method call and the
# intermediate bytes allocation.  The bytearray and touched-page set
# are captured by identity: grow() extends the bytearray in place and
# reset_tracking() clears the set in place, so both stay valid for the
# lifetime of the instance.
# ----------------------------------------------------------------------
#: op -> (struct format, post-mask or None).  Masks re-canonicalise
#: sign-extended sub-width loads to the unsigned value convention.
_FAST_LOAD = {
    "i32.load": ("<I", None),
    "i64.load": ("<Q", None),
    "f32.load": ("<f", None),
    "f64.load": ("<d", None),
    "i32.load8_s": ("<b", M32),
    "i32.load8_u": ("<B", None),
    "i32.load16_s": ("<h", M32),
    "i32.load16_u": ("<H", None),
    "i64.load8_s": ("<b", M64),
    "i64.load8_u": ("<B", None),
    "i64.load16_s": ("<h", M64),
    "i64.load16_u": ("<H", None),
    "i64.load32_s": ("<i", M64),
    "i64.load32_u": ("<I", None),
}

#: op -> (struct format, pre-mask or None).  Sub-width stores truncate;
#: full-width values are already canonical for their unsigned format.
_FAST_STORE = {
    "i32.store": ("<I", None),
    "i64.store": ("<Q", None),
    "f32.store": ("<f", None),
    "f64.store": ("<d", None),
    "i32.store8": ("<B", 0xFF),
    "i32.store16": ("<H", 0xFFFF),
    "i64.store8": ("<B", 0xFF),
    "i64.store16": ("<H", 0xFFFF),
    "i64.store32": ("<I", M32),
}


def _slow_load(memory: LinearMemory, addr: int, size: int, unpack_from):
    """Out-of-bounds load: defer to the strategy, like load_bytes."""
    effective = memory._check(addr, size, write=False)
    if effective < 0:
        return unpack_from(bytes(size), 0)[0]  # 'none': reads as zeros
    if memory.track_pages:
        memory._touch(effective, size)
    return unpack_from(memory.data, effective)[0]


def _value_loader(memory: LinearMemory, op: str) -> Callable[[int], Any]:
    """Return fn(effective_addr) -> value for one typed load op."""
    fmt, mask = _FAST_LOAD[op]
    packer = struct.Struct(fmt)
    size = packer.size
    unpack_from = packer.unpack_from
    data = memory.data
    touched = memory.touched_pages
    track = memory.track_pages

    if mask is None:
        def load(addr):
            memory.load_count += 1
            if addr + size <= len(data):
                if track:
                    first = addr >> 12
                    last = (addr + size - 1) >> 12
                    if first == last:
                        touched.add(first)
                    else:
                        touched.update(range(first, last + 1))
                return unpack_from(data, addr)[0]
            return _slow_load(memory, addr, size, unpack_from)

        return load

    def load_signed(addr):
        memory.load_count += 1
        if addr + size <= len(data):
            if track:
                first = addr >> 12
                last = (addr + size - 1) >> 12
                if first == last:
                    touched.add(first)
                else:
                    touched.update(range(first, last + 1))
            return unpack_from(data, addr)[0] & mask
        return _slow_load(memory, addr, size, unpack_from) & mask

    return load_signed


def _value_storer(memory: LinearMemory, op: str) -> Callable[[int, Any], None]:
    """Return fn(effective_addr, value) for one typed store op."""
    fmt, mask = _FAST_STORE[op]
    packer = struct.Struct(fmt)
    size = packer.size
    pack_into = packer.pack_into
    data = memory.data
    touched = memory.touched_pages
    track = memory.track_pages

    def store(addr, value):
        memory.store_count += 1
        if mask is not None:
            value = value & mask
        if addr + size <= len(data):
            if track:
                first = addr >> 12
                last = (addr + size - 1) >> 12
                if first == last:
                    touched.add(first)
                else:
                    touched.update(range(first, last + 1))
            pack_into(data, addr, value)
            return
        effective = memory._check(addr, size, write=True)
        if effective < 0:
            return  # 'none': write lands in the guard scratch area
        if track:
            memory._touch(effective, size)
        pack_into(data, effective, value)

    return store


def _make_fast_load(op: str, offset: int, memory: LinearMemory, next_pc: int):
    if memory is None:  # pragma: no cover - validation prevents this
        raise LinkError(f"{op} with no memory")
    load = _value_loader(memory, op)

    def run_fast_load(f):
        stack = f.stack
        stack[-1] = load(stack[-1] + offset)
        return next_pc

    return run_fast_load


def _make_fast_store(op: str, offset: int, memory: LinearMemory, next_pc: int):
    if memory is None:  # pragma: no cover - validation prevents this
        raise LinkError(f"{op} with no memory")
    store = _value_storer(memory, op)

    def run_fast_store(f):
        stack = f.stack
        value = stack.pop()
        store(stack.pop() + offset, value)
        return next_pc

    return run_fast_store


def _const_value(ins: Instr) -> Any:
    """The canonical runtime value of a *.const instruction."""
    op = ins.op
    if op == "i32.const":
        return ins.args[0] & M32
    if op == "i64.const":
        return ins.args[0] & M64
    if op == "f32.const":
        return to_f32(float(ins.args[0]))
    return float(ins.args[0])


# ----------------------------------------------------------------------
# Superinstruction code generator
# ----------------------------------------------------------------------
# Each fused region compiles to ONE Python function via symbolic stack
# evaluation: walking the region's instructions with a compile-time
# stack of expression strings turns e.g. the 10-op PolyBench address
# chain ``local.get;const;mul;local.get;add;const;mul;const;add;load``
# into a single statement.  The hot numeric ops inline as expressions
# that are textually identical to the corresponding _BINOPS lambdas;
# everything else calls the table function, so fused semantics are the
# interpreter's semantics by construction.

#: op -> expression template ({0}=lhs, {1}=rhs); MUST mirror _BINOPS.
_INLINE_BINOPS: Dict[str, str] = {
    "i32.add": "(({0} + {1}) & 4294967295)",
    "i32.sub": "(({0} - {1}) & 4294967295)",
    "i32.mul": "(({0} * {1}) & 4294967295)",
    "i32.and": "({0} & {1})",
    "i32.or": "({0} | {1})",
    "i32.xor": "({0} ^ {1})",
    "i32.shl": "(({0} << ({1} & 31)) & 4294967295)",
    "i32.shr_u": "({0} >> ({1} & 31))",
    "i64.add": "(({0} + {1}) & 18446744073709551615)",
    "i64.sub": "(({0} - {1}) & 18446744073709551615)",
    "i64.mul": "(({0} * {1}) & 18446744073709551615)",
    "i64.and": "({0} & {1})",
    "i64.or": "({0} | {1})",
    "i64.xor": "({0} ^ {1})",
    "i64.shl": "(({0} << ({1} & 63)) & 18446744073709551615)",
    "i64.shr_u": "({0} >> ({1} & 63))",
    "f64.add": "({0} + {1})",
    "f64.sub": "({0} - {1})",
    "f64.mul": "({0} * {1})",
}
for _ty, _cmps in (
    ("i32", (("eq", "=="), ("ne", "!="), ("lt_u", "<"), ("gt_u", ">"),
             ("le_u", "<="), ("ge_u", ">="))),
    ("i64", (("eq", "=="), ("ne", "!="), ("lt_u", "<"), ("gt_u", ">"),
             ("le_u", "<="), ("ge_u", ">="))),
    ("f32", (("eq", "=="), ("ne", "!="), ("lt", "<"), ("gt", ">"),
             ("le", "<="), ("ge", ">="))),
    ("f64", (("eq", "=="), ("ne", "!="), ("lt", "<"), ("gt", ">"),
             ("le", "<="), ("ge", ">="))),
):
    for _cmp, _sym in _cmps:
        _INLINE_BINOPS[f"{_ty}.{_cmp}"] = f"(1 if {{0}} {_sym} {{1}} else 0)"

#: op -> expression template ({0}=operand); MUST mirror _UNOPS.
_INLINE_UNOPS: Dict[str, str] = {
    "i32.eqz": "(1 if {0} == 0 else 0)",
    "i64.eqz": "(1 if {0} == 0 else 0)",
    "i32.wrap_i64": "({0} & 4294967295)",
}


def _gen_region(
    region, body: Sequence[Instr], memory: LinearMemory, body_len: int
) -> Optional[Callable]:
    """Compile one fused region to a single handler function.

    The symbolic stack ``sym`` holds, for every value the region has
    (conceptually) pushed, a pure Python expression: a local slot
    ``L[i]``, an int literal, a bound constant, or a temp assigned by
    an earlier statement.  Real frame-stack traffic only happens when
    the region consumes values pushed *before* it (inline ``S.pop()``
    in exactly the order the unfused interpreter would pop them) and
    in the final flush that pushes leftover expressions.  Because all
    expressions are pure, every interleaving matches the unfused one.
    """
    head = region.head
    after = head + region.length
    ins_list = list(body[head:after])
    env: Dict[str, Any] = {"_branch": _branch}
    lines: List[str] = []
    sym: List[str] = []
    counts = {"t": 0, "u": 0}

    def bind(value: Any) -> str:
        name = f"_e{len(env)}"
        env[name] = value
        return name

    def emit(stmt: str) -> None:
        lines.append("    " + stmt)

    def new_temp(expr: str) -> str:
        name = f"t{counts['t']}"
        counts["t"] += 1
        emit(f"{name} = {expr}")
        return name

    def pop() -> str:
        if sym:
            return sym.pop()
        # Underflow: the region consumes a value pushed before it.
        name = f"u{counts['u']}"
        counts["u"] += 1
        emit(f"{name} = S.pop()")
        return name

    def flush_locals() -> None:
        # Materialise pending L[...] reads before a local is written so
        # they observe the pre-assignment value, as unfused ops did.
        for idx, expr in enumerate(sym):
            if "L[" in expr:
                sym[idx] = new_temp(expr)

    def flush_stack() -> None:
        if len(sym) == 1:
            emit(f"S.append({sym[0]})")
        elif sym:
            emit(f"S.extend(({', '.join(sym)}))")
        sym.clear()

    start = 0
    if ins_list[0].op == "loop":
        # The loop label must be live before anything else runs; ops
        # inside the loop cannot pop below it, so no underflow precedes.
        emit(f"f.labels.append(({head}, len(S), 0))")
        start = 1

    terminated = False
    for ins in ins_list[start:]:
        op = ins.op
        if op == "local.get":
            sym.append(f"L[{ins.args[0]}]")
        elif op == "local.set":
            flush_locals()
            value = pop()
            emit(f"L[{ins.args[0]}] = {value}")
        elif op == "local.tee":
            flush_locals()
            value = pop()
            sym.append(value)
            emit(f"L[{ins.args[0]}] = {value}")
        elif op in ("i32.const", "i64.const"):
            sym.append(repr(_const_value(ins)))
        elif op in ("f32.const", "f64.const"):
            sym.append(bind(_const_value(ins)))
        elif op == "drop":
            pop()
        elif op == "select":
            cond = pop()
            second = pop()
            first = pop()
            sym.append(new_temp(f"({first} if {cond} else {second})"))
        elif op in predecode.LOAD_NAMES:
            addr = pop()
            loader = bind(_value_loader(memory, op))
            offset = ins.args[1]
            expr = f"{loader}({addr} + {offset})" if offset else f"{loader}({addr})"
            sym.append(expr)  # last op of the region: no temp needed
        elif op in predecode.STORE_NAMES:
            value = pop()
            addr = pop()
            storer = bind(_value_storer(memory, op))
            offset = ins.args[1]
            target = f"{addr} + {offset}" if offset else addr
            emit(f"{storer}({target}, {value})")
        elif op == "br":
            flush_stack()
            emit(f"return _branch(f, {ins.args[0]})")
            terminated = True
        elif op == "br_if":
            cond = pop()
            flush_stack()
            emit(f"if {cond}:")
            lines.append(f"        return _branch(f, {ins.args[0]})")
        elif op == "return":
            flush_stack()
            emit(f"return {body_len}")
            terminated = True
        elif op in _BINOPS:
            rhs = pop()
            lhs = pop()
            template = _INLINE_BINOPS.get(op)
            if template is not None:
                expr = template.format(lhs, rhs)
            else:
                expr = f"{bind(_BINOPS[op])}({lhs}, {rhs})"
            sym.append(new_temp(expr))
        elif op in _UNOPS:
            operand = pop()
            template = _INLINE_UNOPS.get(op)
            if template is not None:
                expr = template.format(operand)
            else:
                expr = f"{bind(_UNOPS[op])}({operand})"
            sym.append(new_temp(expr))
        else:  # pragma: no cover - planner only schedules known ops
            return None
    if not terminated:
        flush_stack()
        emit(f"return {after}")

    # Bind the environment through default parameters: defaults live in
    # the function object, so handler-time lookups are all LOAD_FAST.
    params = "".join(f", {name}={name}" for name in env)
    source = "\n".join(
        [f"def _fused(f{params}):", "    L = f.locals", "    S = f.stack"]
        + lines
    ) + "\n"
    namespace = dict(env)
    exec(compile(source, f"<fused:{head}+{region.length}>", "exec"), namespace)
    return namespace["_fused"]


# ----------------------------------------------------------------------
# Numeric operator tables
# ----------------------------------------------------------------------
def _div_s32(a, b):
    sa, sb = s32(a), s32(b)
    if sb == 0:
        raise Trap("integer-divide-by-zero")
    if sa == -0x8000_0000 and sb == -1:
        raise Trap("integer-overflow")
    return _trunc_div(sa, sb) & M32


def _div_u32(a, b):
    if b == 0:
        raise Trap("integer-divide-by-zero")
    return a // b


def _rem_s32(a, b):
    sa, sb = s32(a), s32(b)
    if sb == 0:
        raise Trap("integer-divide-by-zero")
    return _trunc_rem(sa, sb) & M32


def _rem_u32(a, b):
    if b == 0:
        raise Trap("integer-divide-by-zero")
    return a % b


def _div_s64(a, b):
    sa, sb = s64(a), s64(b)
    if sb == 0:
        raise Trap("integer-divide-by-zero")
    if sa == -0x8000_0000_0000_0000 and sb == -1:
        raise Trap("integer-overflow")
    return _trunc_div(sa, sb) & M64


def _div_u64(a, b):
    if b == 0:
        raise Trap("integer-divide-by-zero")
    return a // b


def _rem_s64(a, b):
    sa, sb = s64(a), s64(b)
    if sb == 0:
        raise Trap("integer-divide-by-zero")
    return _trunc_rem(sa, sb) & M64


def _rem_u64(a, b):
    if b == 0:
        raise Trap("integer-divide-by-zero")
    return a % b


_BINOPS: Dict[str, Callable[[Any, Any], Any]] = {
    # i32
    "i32.add": lambda a, b: (a + b) & M32,
    "i32.sub": lambda a, b: (a - b) & M32,
    "i32.mul": lambda a, b: (a * b) & M32,
    "i32.div_s": _div_s32,
    "i32.div_u": _div_u32,
    "i32.rem_s": _rem_s32,
    "i32.rem_u": _rem_u32,
    "i32.and": lambda a, b: a & b,
    "i32.or": lambda a, b: a | b,
    "i32.xor": lambda a, b: a ^ b,
    "i32.shl": lambda a, b: (a << (b & 31)) & M32,
    "i32.shr_s": lambda a, b: (s32(a) >> (b & 31)) & M32,
    "i32.shr_u": lambda a, b: a >> (b & 31),
    "i32.rotl": lambda a, b: _rotl(a, b, 32, M32),
    "i32.rotr": lambda a, b: _rotr(a, b, 32, M32),
    "i32.eq": lambda a, b: 1 if a == b else 0,
    "i32.ne": lambda a, b: 1 if a != b else 0,
    "i32.lt_s": lambda a, b: 1 if s32(a) < s32(b) else 0,
    "i32.lt_u": lambda a, b: 1 if a < b else 0,
    "i32.gt_s": lambda a, b: 1 if s32(a) > s32(b) else 0,
    "i32.gt_u": lambda a, b: 1 if a > b else 0,
    "i32.le_s": lambda a, b: 1 if s32(a) <= s32(b) else 0,
    "i32.le_u": lambda a, b: 1 if a <= b else 0,
    "i32.ge_s": lambda a, b: 1 if s32(a) >= s32(b) else 0,
    "i32.ge_u": lambda a, b: 1 if a >= b else 0,
    # i64
    "i64.add": lambda a, b: (a + b) & M64,
    "i64.sub": lambda a, b: (a - b) & M64,
    "i64.mul": lambda a, b: (a * b) & M64,
    "i64.div_s": _div_s64,
    "i64.div_u": _div_u64,
    "i64.rem_s": _rem_s64,
    "i64.rem_u": _rem_u64,
    "i64.and": lambda a, b: a & b,
    "i64.or": lambda a, b: a | b,
    "i64.xor": lambda a, b: a ^ b,
    "i64.shl": lambda a, b: (a << (b & 63)) & M64,
    "i64.shr_s": lambda a, b: (s64(a) >> (b & 63)) & M64,
    "i64.shr_u": lambda a, b: a >> (b & 63),
    "i64.rotl": lambda a, b: _rotl(a, b, 64, M64),
    "i64.rotr": lambda a, b: _rotr(a, b, 64, M64),
    "i64.eq": lambda a, b: 1 if a == b else 0,
    "i64.ne": lambda a, b: 1 if a != b else 0,
    "i64.lt_s": lambda a, b: 1 if s64(a) < s64(b) else 0,
    "i64.lt_u": lambda a, b: 1 if a < b else 0,
    "i64.gt_s": lambda a, b: 1 if s64(a) > s64(b) else 0,
    "i64.gt_u": lambda a, b: 1 if a > b else 0,
    "i64.le_s": lambda a, b: 1 if s64(a) <= s64(b) else 0,
    "i64.le_u": lambda a, b: 1 if a <= b else 0,
    "i64.ge_s": lambda a, b: 1 if s64(a) >= s64(b) else 0,
    "i64.ge_u": lambda a, b: 1 if a >= b else 0,
    # f32
    "f32.add": lambda a, b: to_f32(a + b),
    "f32.sub": lambda a, b: to_f32(a - b),
    "f32.mul": lambda a, b: to_f32(a * b),
    "f32.div": lambda a, b: to_f32(_fdiv(a, b)),
    "f32.min": _fmin,
    "f32.max": _fmax,
    "f32.copysign": lambda a, b: math.copysign(a, b),
    "f32.eq": lambda a, b: 1 if a == b else 0,
    "f32.ne": lambda a, b: 1 if a != b else 0,
    "f32.lt": lambda a, b: 1 if a < b else 0,
    "f32.gt": lambda a, b: 1 if a > b else 0,
    "f32.le": lambda a, b: 1 if a <= b else 0,
    "f32.ge": lambda a, b: 1 if a >= b else 0,
    # f64
    "f64.add": lambda a, b: a + b,
    "f64.sub": lambda a, b: a - b,
    "f64.mul": lambda a, b: a * b,
    "f64.div": _fdiv,
    "f64.min": _fmin,
    "f64.max": _fmax,
    "f64.copysign": lambda a, b: math.copysign(a, b),
    "f64.eq": lambda a, b: 1 if a == b else 0,
    "f64.ne": lambda a, b: 1 if a != b else 0,
    "f64.lt": lambda a, b: 1 if a < b else 0,
    "f64.gt": lambda a, b: 1 if a > b else 0,
    "f64.le": lambda a, b: 1 if a <= b else 0,
    "f64.ge": lambda a, b: 1 if a >= b else 0,
}

_UNOPS: Dict[str, Callable[[Any], Any]] = {
    # integer unary
    "i32.eqz": lambda a: 1 if a == 0 else 0,
    "i64.eqz": lambda a: 1 if a == 0 else 0,
    "i32.clz": lambda a: _clz(a, 32),
    "i32.ctz": lambda a: _ctz(a, 32),
    "i32.popcnt": lambda a: a.bit_count(),
    "i64.clz": lambda a: _clz(a, 64),
    "i64.ctz": lambda a: _ctz(a, 64),
    "i64.popcnt": lambda a: a.bit_count(),
    # float unary
    "f32.abs": lambda a: to_f32(math.fabs(a)),
    "f32.neg": lambda a: to_f32(-a if a == a else _NAN),
    "f32.ceil": lambda a: to_f32(_fceil(a)),
    "f32.floor": lambda a: to_f32(_ffloor(a)),
    "f32.trunc": lambda a: to_f32(_ftrunc(a)),
    "f32.nearest": lambda a: to_f32(_fnearest(a)),
    "f32.sqrt": lambda a: to_f32(_fsqrt(a)),
    "f64.abs": math.fabs,
    "f64.neg": lambda a: -a if a == a else _NAN,
    "f64.ceil": _fceil,
    "f64.floor": _ffloor,
    "f64.trunc": _ftrunc,
    "f64.nearest": _fnearest,
    "f64.sqrt": _fsqrt,
    # conversions
    "i32.wrap_i64": lambda a: a & M32,
    "i32.trunc_f32_s": lambda a: _trunc_to_int(a, -(2**31), 2**31 - 1) & M32,
    "i32.trunc_f32_u": lambda a: _trunc_to_int(a, 0, 2**32 - 1),
    "i32.trunc_f64_s": lambda a: _trunc_to_int(a, -(2**31), 2**31 - 1) & M32,
    "i32.trunc_f64_u": lambda a: _trunc_to_int(a, 0, 2**32 - 1),
    "i64.extend_i32_s": lambda a: s32(a) & M64,
    "i64.extend_i32_u": lambda a: a,
    "i64.trunc_f32_s": lambda a: _trunc_to_int(a, -(2**63), 2**63 - 1) & M64,
    "i64.trunc_f32_u": lambda a: _trunc_to_int(a, 0, 2**64 - 1),
    "i64.trunc_f64_s": lambda a: _trunc_to_int(a, -(2**63), 2**63 - 1) & M64,
    "i64.trunc_f64_u": lambda a: _trunc_to_int(a, 0, 2**64 - 1),
    "f32.convert_i32_s": lambda a: to_f32(float(s32(a))),
    "f32.convert_i32_u": lambda a: to_f32(float(a)),
    "f32.convert_i64_s": lambda a: to_f32(float(s64(a))),
    "f32.convert_i64_u": lambda a: to_f32(float(a)),
    "f32.demote_f64": to_f32,
    "f64.convert_i32_s": lambda a: float(s32(a)),
    "f64.convert_i32_u": lambda a: float(a),
    "f64.convert_i64_s": lambda a: float(s64(a)),
    "f64.convert_i64_u": lambda a: float(a),
    "f64.promote_f32": lambda a: a,
    "i32.reinterpret_f32": lambda a: struct.unpack("<I", struct.pack("<f", a))[0],
    "i64.reinterpret_f64": lambda a: struct.unpack("<Q", struct.pack("<d", a))[0],
    "f32.reinterpret_i32": lambda a: struct.unpack("<f", struct.pack("<I", a))[0],
    "f64.reinterpret_i64": lambda a: struct.unpack("<d", struct.pack("<Q", a))[0],
    # sign extension
    "i32.extend8_s": lambda a: ((a & 0xFF) - 0x100 if a & 0x80 else a & 0xFF) & M32,
    "i32.extend16_s": lambda a: ((a & 0xFFFF) - 0x10000 if a & 0x8000 else a & 0xFFFF) & M32,
    "i64.extend8_s": lambda a: ((a & 0xFF) - 0x100 if a & 0x80 else a & 0xFF) & M64,
    "i64.extend16_s": lambda a: ((a & 0xFFFF) - 0x10000 if a & 0x8000 else a & 0xFFFF) & M64,
    "i64.extend32_s": lambda a: (s32(a & M32)) & M64,
}
