"""Execution engines for WebAssembly modules.

* :mod:`memory` — linear memory instances with page-touch tracking;
* :mod:`strategies` — the paper's five bounds-checking strategies
  (``none``, ``clamp``, ``trap``, ``mprotect``, ``uffd``) as objects
  that define both the *functional* out-of-bounds semantics and the
  *code shape* each strategy asks the compiler to emit;
* :mod:`interpreter` — a threaded-interpreter-style functional engine:
  it is at once the reference semantics, the Wasm3 runtime model, and
  the dynamic profiler that records per-instruction execution counts
  and memory events for the timing pipeline;
* :mod:`profile` — the :class:`ExecutionProfile` those runs produce.
"""

from repro.runtime.memory import LinearMemory, MemoryEvent
from repro.runtime.strategies import (
    BoundsStrategy,
    STRATEGIES,
    strategy_named,
)
from repro.runtime.interpreter import Instance, Interpreter, HostFunc
from repro.runtime.profile import ExecutionProfile

__all__ = [
    "LinearMemory",
    "MemoryEvent",
    "BoundsStrategy",
    "STRATEGIES",
    "strategy_named",
    "Instance",
    "Interpreter",
    "HostFunc",
    "ExecutionProfile",
]
