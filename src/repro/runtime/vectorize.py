"""Tier-2 compiler: whole-function Wasm -> Python codegen.

The fused interpreter (tier 1) is still a per-instruction machine; this
module compiles an *entire function body* into one Python function so a
hot PolyBench kernel costs a handful of Python statements per loop
iteration instead of one dynamic dispatch per Wasm instruction — and,
when NumPy is available, batches whole innermost loops through
``numpy.frombuffer`` slices.

Observable equivalence is the hard constraint: outputs (floats by bit
pattern), ``load_count``/``store_count``, touched-page sets and the
per-pc execution profile must be bit-identical to the per-instruction
tiers.  Three mechanisms make that possible:

* **Interval + affine analysis.**  An expression gets a signed interval
  ``ival`` only when it provably stays in ``[0, 2**31)`` with no
  intermediate wrap-around, so plain (unmasked) Python arithmetic is
  exact; everything else reuses the interpreter's masked expression
  templates or its ``_BINOPS``/``_UNOPS`` table functions, so the
  semantics are the interpreter's semantics by construction.  Affine
  forms over loop induction variables (the same shape the register-IR
  BCE pass proves in ``repro.compiler.bce``) turn memory accesses into
  (base, stride, size) *streams* whose traffic and page footprint are
  accounted in bulk.

* **Entry-only deoptimisation.**  Every access address has a static
  upper bound, so a single ``len(data) < NEED`` guard at function entry
  is the only runtime bounds check.  If it fails, the handler returns 0
  having touched *nothing* (no locals, no memory, no counters) and the
  tier-1 dispatch loop runs the whole call instead.

* **Flow counters.**  Per-pc profile counts are reconstructed exactly
  from a handful of counters — one per straight-line flow region — with
  loop-body counters bulk-incremented by the trip count.  A loop's
  header/condition pcs belong to both the entry and the iteration
  counter (they execute ``entries + iterations`` times); the two
  ``end`` pcs of the block/loop pair never execute at all in the
  recognised loop shape and map to no counter.

Compilation failures raise :class:`Bailout` internally and surface as
``{"eligible": False}`` artifacts; the function then simply stays on
tier 1.  NumPy ineligibility (:class:`VecBail`) is never an error —
the scalar compiled loop is kept instead.
"""

from __future__ import annotations

import os
import struct
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.runtime.predecode import (
    BINOP_NAMES,
    CMP_NAMES,
    CONST_NAMES,
    LOAD_NAMES,
    STORE_NAMES,
    TRAPPING_BINOPS,
    TRAPPING_UNOPS,
    UNOP_NAMES,
)

try:  # NumPy is optional: scalar codegen carries the perf floor alone.
    import numpy as _np

    _np.seterr(all="ignore")  # Wasm float ops never raise
except Exception:  # pragma: no cover - environment without numpy
    _np = None

#: Bump when generated code or the artifact format changes.
TIER2_VERSION = 1

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF
I31 = 1 << 31  # exclusive bound for "plain arithmetic is exact"
PAGE = 4096


class Bailout(Exception):
    """Function shape unsupported by tier 2 (stays on tier 1)."""


class VecBail(Exception):
    """One loop cannot use the NumPy path (scalar loop still emitted)."""


def _to_f32(x: float) -> float:
    return struct.unpack("<f", struct.pack("<f", x))[0]


_TABLES = None


def _tables():
    """Interpreter op tables, imported lazily to avoid a module cycle."""
    global _TABLES
    if _TABLES is None:
        from repro.runtime import interpreter as I

        _TABLES = (
            I._INLINE_BINOPS,
            I._INLINE_UNOPS,
            I._FAST_LOAD,
            I._FAST_STORE,
            I._BINOPS,
            I._UNOPS,
        )
    return _TABLES


#: Signed i32 compares become plain Python compares when both operands
#: carry intervals (signed value == canonical value in [0, 2**31)).
_SIGNED_CMP32 = {
    "i32.lt_s": "<",
    "i32.gt_s": ">",
    "i32.le_s": "<=",
    "i32.ge_s": ">=",
}

#: Unsigned sub-width loads with statically known result ranges.
_LOAD_IVAL = {
    "i32.load8_u": (0, 0xFF),
    "i32.load16_u": (0, 0xFFFF),
}


class Val:
    """One symbolic stack slot.

    ``py`` is a pure Python expression for the canonical runtime value;
    ``node`` is a structural tuple used for invariance/reduction
    matching and NumPy regeneration; ``ival`` (signed interval, only
    when provably inside ``[0, 2**31)`` with no wrap) licenses plain
    arithmetic; ``aff`` is an affine form ``{None: const, local: coeff}``
    over currently-stable locals; ``locs`` are the local slots the
    ``py`` text reads (for flush-on-assignment).
    """

    __slots__ = ("py", "ty", "node", "ival", "aff", "locs")

    def __init__(self, py, ty, node, ival=None, aff=None, locs=frozenset()):
        self.py = py
        self.ty = ty
        self.node = node
        self.ival = ival
        self.aff = aff
        self.locs = locs


class _Compiler:
    def __init__(self, body, matches, local_types, n_params, n_results):
        self.body = body
        self.matches = matches
        self.local_types = list(local_types)
        self.n_params = n_params
        self.n_results = n_results
        self.lines: List[str] = []
        self.indent = 1
        self.env: Dict[Tuple, str] = {}
        self.env_order: List[Tuple[str, str, Any]] = []
        self.counter_pcs: List[List[int]] = []
        self.ntmp = 0
        self.nm = 0
        self.nb = 0
        self.need = 0
        self.uses_mem = False
        self.uses_np = False
        self.lver = [0] * len(self.local_types)
        self.lvals: List[Val] = []
        for i, ty in enumerate(self.local_types):
            if i >= n_params:
                # Declared locals start at zero: a known constant.
                zero: Any = 0 if ty in ("i32", "i64") else 0.0
                iv = (0, 0) if ty == "i32" else None
                self.lvals.append(
                    Val(
                        f"l{i}",
                        ty,
                        ("const", zero, ty),
                        ival=iv,
                        aff={None: 0} if iv else None,
                        locs=frozenset((i,)),
                    )
                )
            else:
                self.lvals.append(
                    Val(f"l{i}", ty, ("local", i, 0), locs=frozenset((i,)))
                )
        self.loop_stack: List[dict] = []
        self.sym: List[Val] = []
        self._vec: Optional[dict] = None

    # -- infrastructure ------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def _tmp(self) -> str:
        name = f"t{self.ntmp}"
        self.ntmp += 1
        return name

    def bind(self, kind: str, arg: Any = None, prefix: str = "_x") -> str:
        key = (kind, arg)
        name = self.env.get(key)
        if name is None:
            name = f"{prefix}{len(self.env)}"
            self.env[key] = name
            self.env_order.append((name, kind, arg))
        return name

    def bind_fixed(self, name: str, kind: str) -> str:
        key = (kind, None)
        if key not in self.env:
            self.env[key] = name
            self.env_order.append((name, kind, None))
        return name

    def new_counter(self, pcs: Sequence[int] = ()) -> int:
        self.counter_pcs.append(list(pcs))
        return len(self.counter_pcs) - 1

    def _unstable(self, index: int) -> bool:
        return any(
            index == ctx["var"] or index in ctx["assigned"]
            for ctx in self.loop_stack
        )

    def _invalidate(self, idxs) -> None:
        if not idxs:
            return
        for j in idxs:
            self.lver[j] += 1
            self.lvals[j] = Val(
                f"l{j}",
                self.local_types[j],
                ("local", j, self.lver[j]),
                locs=frozenset((j,)),
            )
        for k, lv in enumerate(self.lvals):
            if lv.aff is not None and any(
                key in idxs for key in lv.aff if key is not None
            ):
                self.lvals[k] = Val(
                    lv.py, lv.ty, lv.node, ival=lv.ival, aff=None, locs=lv.locs
                )

    def _touch_mem(self) -> None:
        self.uses_mem = True
        self.bind_fixed("data", "data")
        self.bind_fixed("mem", "mem")
        self.bind_fixed("T", "touched")
        self.bind_fixed("track", "track")

    def _const_val(self, value: Any, ty: str) -> Val:
        node = ("const", value, ty)
        if ty in ("i32", "i64"):
            iv = (value, value) if ty == "i32" and value < I31 else None
            return Val(
                repr(value), ty, node, ival=iv, aff={None: value} if iv else None
            )
        if value != value or value in (float("inf"), float("-inf")):
            return Val(self.bind("const", repr(value), "_k"), ty, node)
        return Val(repr(value), ty, node)

    def _node_ival(self, node) -> Optional[Tuple[int, int]]:
        kind = node[0]
        if kind == "const":
            v = node[1]
            if isinstance(v, int) and not isinstance(v, bool) and 0 <= v < I31:
                return (v, v)
            return None
        if kind == "local":
            _, j, ver = node
            return self.lvals[j].ival if ver == self.lver[j] else None
        if kind in ("bin", "un", "load", "select"):
            return node[-1]
        return None

    @staticmethod
    def _render_aff(aff: Dict[Optional[int], int]) -> str:
        terms = []
        for k, c in aff.items():
            if k is None or c == 0:
                continue
            terms.append(f"l{k}" if c == 1 else f"l{k}*{c}")
        terms.append(str(aff.get(None, 0)))
        return " + ".join(terms)

    # -- operators -----------------------------------------------------
    def _binop(self, op: str) -> None:
        inline_bin, _, _, _, binops, _ = _tables()
        b = self.sym.pop()
        a = self.sym.pop()
        ty = op.split(".", 1)[0]
        rty = "i32" if op in CMP_NAMES else ty
        locs = a.locs | b.locs
        if a.node[0] == "const" and b.node[0] == "const":
            try:
                value = binops[op](a.node[1], b.node[1])
            except Exception as exc:
                raise Bailout(f"{op} on constants traps: {exc}")
            self.sym.append(self._const_val(value, rty))
            return

        iv = None
        aff = None
        py = None
        if op in CMP_NAMES:
            iv = (0, 1)
            sym = _SIGNED_CMP32.get(op)
            if sym is not None:
                if a.ival is None or b.ival is None:
                    py = None  # needs signed decode: table function below
                else:
                    py = f"(1 if {a.py} {sym} {b.py} else 0)"
            if py is None:
                template = inline_bin.get(op)
                if template is not None:
                    py = template.format(a.py, b.py)
        elif ty == "i32" and a.ival is not None and b.ival is not None:
            al, ah = a.ival
            bl, bh = b.ival
            lo = hi = None
            if op == "i32.add":
                lo, hi = al + bl, ah + bh
                py = f"({a.py} + {b.py})"
                aff = self._aff_sum(a.aff, b.aff, 1)
            elif op == "i32.sub":
                lo, hi = al - bh, ah - bl
                py = f"({a.py} - {b.py})"
                aff = self._aff_sum(a.aff, b.aff, -1)
            elif op == "i32.mul":
                products = (al * bl, al * bh, ah * bl, ah * bh)
                lo, hi = min(products), max(products)
                py = f"({a.py} * {b.py})"
                aff = self._aff_scale(a.aff, b.aff)
            elif op == "i32.shl" and b.node[0] == "const":
                s = b.node[1] & 31
                lo, hi = al << s, ah << s
                py = f"({a.py} << {s})"
                aff = self._aff_scale(a.aff, {None: 1 << s})
            elif op in ("i32.div_s", "i32.div_u") and b.node[0] == "const" and bl > 0:
                lo, hi = al // bh, ah // bl
                py = f"({a.py} // {b.py})"
            elif op in ("i32.rem_s", "i32.rem_u") and b.node[0] == "const" and bl > 0:
                lo, hi = 0, min(ah, bl - 1)
                py = f"({a.py} % {b.py})"
            if py is not None and lo is not None and 0 <= lo and hi < I31:
                iv = (lo, hi)
            else:
                py = aff = None

        if py is None:
            template = inline_bin.get(op)
            if template is not None:
                py = template.format(a.py, b.py)
            elif op in TRAPPING_BINOPS:
                # A constant non-trapping divisor makes the table
                # function safe; anything else could trap mid-function.
                if b.node[0] != "const":
                    raise Bailout(f"{op} with non-constant divisor")
                d = b.node[1]
                if d == 0:
                    raise Bailout(f"{op} by constant zero")
                bits = 32 if ty == "i32" else 64
                if op.endswith("div_s") and d == (1 << bits) - 1:
                    raise Bailout(f"{op} by constant -1 may overflow")
                py = f"{self.bind('bin', op, '_f')}({a.py}, {b.py})"
            else:
                py = f"{self.bind('bin', op, '_f')}({a.py}, {b.py})"
        node = ("bin", op, a.node, b.node, iv)
        self.sym.append(Val(py, rty, node, ival=iv, aff=aff, locs=locs))

    @staticmethod
    def _aff_sum(x, y, sign):
        if x is None or y is None:
            return None
        out = dict(x)
        out.setdefault(None, 0)
        for k, c in y.items():
            out[k] = out.get(k, 0) + sign * c
        return {k: c for k, c in out.items() if c != 0 or k is None}

    @staticmethod
    def _aff_scale(x, y):
        """Affine product: valid only when one side is a pure constant."""
        for const, other in ((x, y), (y, x)):
            if (
                const is not None
                and other is not None
                and all(k is None for k in const)
            ):
                c = const.get(None, 0)
                return {k: v * c for k, v in other.items()}
        return None

    def _unop(self, op: str) -> None:
        _, inline_un, _, _, _, unops = _tables()
        a = self.sym.pop()
        rty = op.split(".", 1)[0]
        if a.node[0] == "const":
            try:
                value = unops[op](a.node[1])
            except Exception as exc:
                raise Bailout(f"{op} on constant traps: {exc}")
            self.sym.append(self._const_val(value, rty))
            return
        if op in TRAPPING_UNOPS:
            raise Bailout(f"{op} may trap")
        iv = None
        if op in ("i32.eqz", "i64.eqz"):
            iv = (0, 1)
        template = inline_un.get(op)
        if template is not None:
            py = template.format(a.py)
        elif op == "f64.convert_i32_s" and a.ival is not None:
            py = f"float({a.py})"
        else:
            py = f"{self.bind('un', op, '_g')}({a.py})"
        node = ("un", op, a.node, iv)
        self.sym.append(Val(py, rty, node, ival=iv, locs=a.locs))

    # -- memory --------------------------------------------------------
    def _access(self, ins, stream_ctx, kind):
        """Common address handling; returns (eff_expr, fmt, mask, size, si)."""
        _, _, fast_load, fast_store, _, _ = _tables()
        op = ins.op
        offset = ins.args[1]
        if kind == "load":
            fmt, mask = fast_load[op]
        else:
            fmt, mask = fast_store[op]
        size = struct.calcsize(fmt)
        addr = self.sym.pop()
        if addr.ival is None:
            raise Bailout(f"{op}: unproven address bounds")
        self.need = max(self.need, addr.ival[1] + offset + size)
        self._touch_mem()
        eff = addr.py if offset == 0 else f"({addr.py} + {offset})"
        si = None
        if stream_ctx is not None and addr.aff is not None:
            aff = dict(addr.aff)
            aff[None] = aff.get(None, 0) + offset
            stride = aff.get(stream_ctx["var"], 0)
            stream_ctx["streams"].append(
                {
                    "kind": kind,
                    "op": op,
                    "stride": stride,
                    "size": size,
                    "base": self._render_aff(aff),
                    "node": (addr.node, offset),
                    "name": None,
                }
            )
            si = len(stream_ctx["streams"]) - 1
        else:
            if stream_ctx is not None:
                stream_ctx["vec_ok"] = False
            t = self._tmp()
            self.emit(f"{t} = {eff}")
            eff = t
            self.emit(f"mem.{kind}_count += 1")
            self.emit(
                f"if track: T.update(range({t} >> 12, "
                f"(({t} + {size - 1}) >> 12) + 1))"
            )
        return eff, fmt, mask, size, si

    def _store(self, ins, stream_ctx) -> None:
        value = self.sym.pop()
        eff, fmt, mask, size, si = self._access(ins, stream_ctx, "store")
        vpy = value.py if mask is None else f"({value.py} & {mask})"
        pk = self.bind("p", fmt, "_p")
        self.emit(f"{pk}(data, {eff}, {vpy})")
        if stream_ctx is not None:
            if si is not None:
                stream_ctx["stores"].append(
                    {"si": si, "value": value, "op": ins.op}
                )
            # si None already cleared vec_ok in _access

    # -- control -------------------------------------------------------
    def _walk(self, start, end, ctr, stream_ctx):
        body = self.body
        pc = start
        while pc < end:
            ins = body[pc]
            op = ins.op
            if op == "block":
                pc = self._loop(pc, ctr, stream_ctx)
                continue
            if op == "if":
                pc = self._if(pc, ctr, stream_ctx)
                continue
            self.counter_pcs[ctr].append(pc)
            if op == "nop":
                pass
            elif op == "local.get":
                index = ins.args[0]
                lv = self.lvals[index]
                aff = lv.aff
                if (
                    aff is None
                    and lv.ival is not None
                    and not self._unstable(index)
                ):
                    aff = {index: 1, None: 0}
                self.sym.append(
                    Val(
                        f"l{index}",
                        lv.ty,
                        lv.node,
                        ival=lv.ival,
                        aff=aff,
                        locs=frozenset((index,)),
                    )
                )
            elif op == "local.set":
                if stream_ctx is not None:
                    stream_ctx["vec_ok"] = False
                self._local_set(ins.args[0])
            elif op in CONST_NAMES:
                raw = ins.args[0]
                if op == "i32.const":
                    self.sym.append(self._const_val(raw & M32, "i32"))
                elif op == "i64.const":
                    self.sym.append(self._const_val(raw & M64, "i64"))
                elif op == "f32.const":
                    self.sym.append(self._const_val(_to_f32(float(raw)), "f32"))
                else:
                    self.sym.append(self._const_val(float(raw), "f64"))
            elif op == "drop":
                self.sym.pop()
            elif op == "select":
                c = self.sym.pop()
                b = self.sym.pop()
                a = self.sym.pop()
                iv = None
                if a.ty == "i32" and a.ival is not None and b.ival is not None:
                    iv = (
                        min(a.ival[0], b.ival[0]),
                        max(a.ival[1], b.ival[1]),
                    )
                self.sym.append(
                    Val(
                        f"({a.py} if {c.py} else {b.py})",
                        a.ty,
                        ("select", c.node, a.node, b.node, iv),
                        ival=iv,
                        locs=a.locs | b.locs | c.locs,
                    )
                )
            elif op in LOAD_NAMES:
                self._do_load(ins, stream_ctx)
            elif op in STORE_NAMES:
                self._store(ins, stream_ctx)
            elif op in BINOP_NAMES:
                self._binop(op)
            elif op in UNOP_NAMES:
                self._unop(op)
            else:
                raise Bailout(f"unsupported op {op}")
            pc += 1

    def _do_load(self, ins, stream_ctx) -> None:
        op = ins.op
        offset = ins.args[1]
        addr_node = self.sym[-1].node  # captured before _access pops it
        eff, fmt, mask, size, _si = self._access(ins, stream_ctx, "load")
        un = self.bind("u", fmt, "_u")
        t = self._tmp()
        if mask is None:
            self.emit(f"{t} = {un}(data, {eff})[0]")
        else:
            self.emit(f"{t} = {un}(data, {eff})[0] & {mask}")
        iv = _LOAD_IVAL.get(op)
        self.sym.append(
            Val(t, op.split(".", 1)[0], ("load", op, addr_node, offset, iv), ival=iv)
        )

    def _local_set(self, index: int) -> None:
        value = self.sym.pop()
        for i, sv in enumerate(self.sym):
            if index in sv.locs:
                t = self._tmp()
                self.emit(f"{t} = {sv.py}")
                aff = sv.aff
                if aff is not None and index in aff:
                    aff = None
                self.sym[i] = Val(
                    t, sv.ty, sv.node, ival=sv.ival, aff=aff, locs=frozenset()
                )
        self.emit(f"l{index} = {value.py}")
        self.lver[index] += 1
        aff = value.aff
        if aff is not None and index in aff:
            aff = None
        self.lvals[index] = Val(
            f"l{index}",
            value.ty,
            value.node,
            ival=value.ival,
            aff=aff,
            locs=frozenset((index,)),
        )
        for k, lv in enumerate(self.lvals):
            if k != index and lv.aff is not None and index in lv.aff:
                self.lvals[k] = Val(
                    lv.py, lv.ty, lv.node, ival=lv.ival, aff=None, locs=lv.locs
                )

    def _eval_pure(self, start, end) -> Val:
        body = self.body
        depth0 = len(self.sym)
        for pc in range(start, end):
            ins = body[pc]
            op = ins.op
            if op in CONST_NAMES:
                raw = ins.args[0]
                if op == "i32.const":
                    self.sym.append(self._const_val(raw & M32, "i32"))
                elif op == "i64.const":
                    self.sym.append(self._const_val(raw & M64, "i64"))
                elif op == "f32.const":
                    self.sym.append(self._const_val(_to_f32(float(raw)), "f32"))
                else:
                    self.sym.append(self._const_val(float(raw), "f64"))
            elif op == "local.get":
                index = ins.args[0]
                lv = self.lvals[index]
                self.sym.append(
                    Val(
                        f"l{index}",
                        lv.ty,
                        lv.node,
                        ival=lv.ival,
                        aff=lv.aff,
                        locs=frozenset((index,)),
                    )
                )
            elif op in BINOP_NAMES:
                self._binop(op)
            elif op in UNOP_NAMES and op not in TRAPPING_UNOPS:
                self._unop(op)
            else:
                raise Bailout(f"loop bound uses {op}")
        if len(self.sym) != depth0 + 1:
            raise Bailout("loop bound stack mismatch")
        return self.sym.pop()

    def _loop(self, block_pc, ctr, parent_ctx):
        body = self.body
        if parent_ctx is not None:
            parent_ctx["vec_ok"] = False
        if self.sym:
            raise Bailout("loop entered with non-empty symbolic stack")
        match = self.matches.get(block_pc)
        if match is None:
            raise Bailout("unmatched block")
        block_end, blk_else = match
        if blk_else is not None:
            raise Bailout("block with else")
        if body[block_pc].args[0] is not None:
            raise Bailout("block with result type")
        loop_pc = block_pc + 1
        if loop_pc >= len(body) or body[loop_pc].op != "loop":
            raise Bailout("bare block (not a counted loop)")
        if body[loop_pc].args[0] is not None:
            raise Bailout("loop with result type")
        loop_end, _ = self.matches[loop_pc]
        if loop_end != block_end - 1:
            raise Bailout("loop/block ends not adjacent")

        brif = None
        for pc in range(loop_pc + 1, loop_end):
            if body[pc].op == "br_if":
                brif = pc
                break
        if brif is None:
            raise Bailout("loop without br_if exit")
        if body[brif].args[0] != 1:
            raise Bailout("loop exit depth != 1")
        if body[loop_pc + 1].op != "local.get":
            raise Bailout("loop condition does not start with local.get")
        v = body[loop_pc + 1].args[0]
        cmp_op = body[brif - 1].op
        if cmp_op not in ("i32.ge_s", "i32.le_s"):
            raise Bailout(f"unsupported loop condition {cmp_op}")
        stop = self._eval_pure(loop_pc + 2, brif - 1)
        if stop.ival is None:
            raise Bailout("loop bound interval unknown")

        t0 = loop_end - 5
        if t0 <= brif:
            raise Bailout("loop body too short for induction tail")
        tail = body[t0:loop_end]
        if not (
            tail[0].op == "local.get"
            and tail[0].args[0] == v
            and tail[1].op == "i32.const"
            and tail[2].op == "i32.add"
            and tail[3].op == "local.set"
            and tail[3].args[0] == v
            and tail[4].op == "br"
            and tail[4].args[0] == 0
        ):
            raise Bailout("unrecognised induction tail")
        sc = tail[1].args[0] & M32
        step = sc - (1 << 32) if sc >= I31 else sc
        if step == 0:
            raise Bailout("zero loop step")
        if (step > 0) != (cmp_op == "i32.ge_s"):
            raise Bailout("loop step/condition direction mismatch")
        start = self.lvals[v]
        if start.ival is None:
            raise Bailout("loop start interval unknown")

        assigned = set()
        for pc in range(brif + 1, t0):
            if body[pc].op in ("local.set", "local.tee"):
                assigned.add(body[pc].args[0])
        if v in assigned:
            raise Bailout("loop variable assigned in body")
        if v in stop.locs or (stop.locs & assigned):
            raise Bailout("loop bound not invariant")

        v0l, v0h = start.ival
        sl, sh = stop.ival
        if step > 0:
            if sh - 1 + step >= I31:
                raise Bailout("loop range may wrap")
            var_iv = (v0l, max(v0l, sh - 1))
            post_iv = (v0l, max(v0h, sh - 1 + step))
        else:
            if sl + 1 + step < 0:
                raise Bailout("loop range may wrap")
            var_iv = (min(v0h, sl + 1), v0h)
            post_iv = (min(v0l, sl + 1 + step), v0h)

        self._invalidate(assigned | {v})
        self.lvals[v] = Val(
            f"l{v}",
            "i32",
            ("local", v, self.lver[v]),
            ival=var_iv,
            aff={v: 1, None: 0},
            locs=frozenset((v,)),
        )

        i_ctr = self.new_counter()
        cond_pcs = list(range(loop_pc, brif + 1))
        self.counter_pcs[ctr].append(block_pc)
        self.counter_pcs[ctr].extend(cond_pcs)
        self.counter_pcs[i_ctr].extend(cond_pcs)
        self.counter_pcs[i_ctr].extend(range(t0, loop_end))

        mv = f"m{self.nm}"
        self.nm += 1
        if step == 1:
            self.emit(f"{mv} = {stop.py} - l{v}")
        elif step > 0:
            self.emit(f"{mv} = ({stop.py} - l{v} + {step - 1}) // {step}")
        else:
            self.emit(f"{mv} = (l{v} - {stop.py} + {-step - 1}) // {-step}")
        self.emit(f"if {mv} > 0:")
        self.indent += 1
        self.emit(f"c{i_ctr} += {mv}")

        ctx = {
            "var": v,
            "assigned": assigned,
            "streams": [],
            "stores": [],
            "vec_ok": True,
            "m": mv,
            "step": step,
        }
        self.loop_stack.append(ctx)
        outer_lines, outer_indent = self.lines, self.indent
        self.lines, self.indent = [], 0
        self._walk(brif + 1, t0, i_ctr, ctx)
        if self.sym:
            raise Bailout("loop body leaves values on stack")
        body_lines = self.lines
        self.lines, self.indent = outer_lines, outer_indent
        self.loop_stack.pop()

        for st in ctx["streams"]:
            st["name"] = f"b{self.nb}"
            self.nb += 1
            self.emit(f"{st['name']} = {st['base']}")

        vec = None
        if ctx["vec_ok"] and ctx["stores"] and _np is not None and step > 0:
            try:
                vec = self._try_vec(ctx)
            except VecBail:
                vec = None
        if vec is not None:
            vec_lines, alias = vec
            self.uses_np = True
            self.bind_fixed("_np", "np")
            self.bind_fixed("_vm", "vecmin")
            cond = f"_np is not None and {mv} >= _vm"
            if alias:
                cond += f" and ({alias})"
            self.emit(f"if {cond}:")
            self.indent += 1
            for line in vec_lines:
                self.emit(line)
            self.emit(f"l{v} += {mv}" if step == 1 else f"l{v} += {mv} * {step}")
            self.indent -= 1
            self.emit("else:")
            self.indent += 1
            self._emit_scalar_loop(v, mv, step, body_lines)
            self.indent -= 1
        else:
            self._emit_scalar_loop(v, mv, step, body_lines)

        nl = sum(1 for st in ctx["streams"] if st["kind"] == "load")
        ns = sum(1 for st in ctx["streams"] if st["kind"] == "store")
        if nl:
            self.emit(f"mem.load_count += {nl} * {mv}")
        if ns:
            self.emit(f"mem.store_count += {ns} * {mv}")
        for st in ctx["streams"]:
            name, stride, size = st["name"], st["stride"], st["size"]
            if stride == 0:
                self.emit(
                    f"if track: T.update(range({name} >> 12, "
                    f"(({name} + {size - 1}) >> 12) + 1))"
                )
            elif 0 < stride <= PAGE:
                # Consecutive accesses land on the same or adjacent
                # pages, so the union of per-access page ranges is the
                # full contiguous span first..last.
                self.emit(
                    f"if track: T.update(range({name} >> 12, "
                    f"(({name} + ({mv} - 1) * {stride} + {size - 1}) >> 12) + 1))"
                )
            else:
                self.emit("if track:")
                self.indent += 1
                a = self._tmp()
                self.emit(
                    f"for {a} in range({name}, {name} + {mv} * {stride}, {stride}):"
                )
                self.indent += 1
                self.emit(
                    f"T.update(range({a} >> 12, (({a} + {size - 1}) >> 12) + 1))"
                )
                self.indent -= 2
        self.indent -= 1

        self._invalidate(assigned | {v})
        self.lvals[v] = Val(
            f"l{v}",
            "i32",
            ("local", v, self.lver[v]),
            ival=post_iv,
            locs=frozenset((v,)),
        )
        return block_end + 1

    def _emit_scalar_loop(self, v, mv, step, body_lines) -> None:
        if step == 1:
            self.emit(f"for l{v} in range(l{v}, l{v} + {mv}):")
        else:
            self.emit(f"for l{v} in range(l{v}, l{v} + {mv} * {step}, {step}):")
        pad = "    " * (self.indent + 1)
        for line in body_lines:
            self.lines.append(pad + line)
        if not body_lines:
            self.lines.append(pad + "pass")
        self.emit(f"l{v} += {step}")

    def _if(self, if_pc, ctr, stream_ctx):
        body = self.body
        if stream_ctx is not None:
            stream_ctx["vec_ok"] = False
        if body[if_pc].args[0] is not None:
            raise Bailout("if with result type")
        cond = self.sym.pop()
        if self.sym:
            raise Bailout("if entered with non-empty symbolic stack")
        end_pc, else_pc = self.matches[if_pc]
        self.counter_pcs[ctr].append(if_pc)
        self.counter_pcs[ctr].append(end_pc)
        assigned = {
            body[pc].args[0]
            for pc in range(if_pc + 1, end_pc)
            if body[pc].op in ("local.set", "local.tee")
        }
        saved = list(self.lvals)
        t_ctr = self.new_counter([else_pc] if else_pc is not None else [])
        self.emit(f"if {cond.py}:")
        self.indent += 1
        self.emit(f"c{t_ctr} += 1")
        then_end = else_pc if else_pc is not None else end_pc
        self._walk(if_pc + 1, then_end, t_ctr, None)
        if self.sym:
            raise Bailout("if arm leaves values on stack")
        self.indent -= 1
        if else_pc is not None:
            self.lvals = list(saved)
            u_ctr = self.new_counter()
            self.emit("else:")
            self.indent += 1
            self.emit(f"c{u_ctr} += 1")
            self._walk(else_pc + 1, end_pc, u_ctr, None)
            if self.sym:
                raise Bailout("if arm leaves values on stack")
            self.indent -= 1
        self.lvals = list(saved)
        self._invalidate(assigned)
        return end_pc + 1

    # -- NumPy batching ------------------------------------------------
    def _try_vec(self, ctx):
        streams = ctx["streams"]
        stores = ctx["stores"]
        for st in streams:
            if st["stride"] < 0:
                raise VecBail
        for s in stores:
            stream = streams[s["si"]]
            if s["op"] != "f64.store" or stream["stride"] % 8 != 0:
                raise VecBail
        reductions = [s for s in stores if streams[s["si"]]["stride"] == 0]
        if reductions and len(stores) != 1:
            raise VecBail
        self._vec = {"ctx": ctx, "lines": [], "names": {}, "isvec": {}, "ar": None}
        lines = self._vec["lines"]
        mv = ctx["m"]
        try:
            if reductions:
                s = stores[0]
                stream = streams[s["si"]]
                vn = s["value"].node
                if not (vn[0] == "bin" and vn[1] in ("f64.add", "f64.sub")):
                    raise VecBail
                acc = vn[2]
                if acc[0] != "load" or acc[1] != "f64.load":
                    raise VecBail
                if (acc[2], acc[3]) != stream["node"]:
                    raise VecBail
                expr, isvec = self._vecgen(vn[3])
                if s["si"] in self._vec["names"]:
                    raise VecBail  # rest reads the accumulator cell
                un = self.bind("u", "<d", "_u")
                pk = self.bind("p", "<d", "_p")
                op = "+" if vn[1] == "f64.add" else "-"
                lines.append(f"_acc = {un}(data, {stream['name']})[0]")
                if isvec:
                    lines.append(f"_ts = {expr}")
                    lines.append(f"for _t in _ts.tolist(): _acc = _acc {op} _t")
                else:
                    lines.append(f"_t = {expr}")
                    lines.append(f"for _i in range({mv}): _acc = _acc {op} _t")
                lines.append(f"{pk}(data, {stream['name']}, _acc)")
            else:
                for s in stores:
                    stream = streams[s["si"]]
                    expr, _ = self._vecgen(s["value"].node)
                    se = stream["stride"] // 8
                    if se == 0:
                        raise VecBail
                    dst = f"_d{s['si']}"
                    view = (
                        f"_np.frombuffer(data, _np.float64, "
                        f"({mv} - 1) * {se} + 1, {stream['name']})"
                    )
                    if se != 1:
                        view += f"[::{se}]"
                    lines.append(f"{dst} = {view}")
                    lines.append(f"{dst}[:] = {expr}")
            alias = self._alias_conditions(ctx, reductions)
        finally:
            vec = self._vec
            self._vec = None
        return vec["lines"], alias

    def _alias_conditions(self, ctx, reductions):
        """Runtime disjointness checks between load and store streams.

        Sequential semantics allow a load stream to coincide with a
        store stream only element-wise (identical base/stride/size) and
        only when a single store exists; everything else must be
        disjoint.  Bases are only known at run time, so the checks are
        emitted into the tier-up condition.
        """
        streams = ctx["streams"]
        mv = ctx["m"]
        used_loads = [
            si for si in self._vec["names"] if streams[si]["kind"] == "load"
        ]
        store_idx = [s["si"] for s in ctx["stores"]]
        single_store = len(store_idx) == 1

        def extent(st):
            if st["stride"] == 0:
                return str(st["size"])
            return f"(({mv}) - 1) * {st['stride']} + {st['size']}"

        conds = []
        for li in used_loads:
            L = streams[li]
            for si in store_idx:
                S = streams[si]
                if li == si:
                    continue
                disjoint = (
                    f"({L['name']} + {extent(L)} <= {S['name']} or "
                    f"{S['name']} + {extent(S)} <= {L['name']})"
                )
                if (
                    single_store
                    and not reductions
                    and L["stride"] == S["stride"]
                    and L["size"] == S["size"]
                ):
                    conds.append(f"({L['name']} == {S['name']} or {disjoint})")
                else:
                    conds.append(disjoint)
        for i, si in enumerate(store_idx):
            for sj in store_idx[i + 1 :]:
                A, B = streams[si], streams[sj]
                conds.append(
                    f"({A['name']} + {extent(A)} <= {B['name']} or "
                    f"{B['name']} + {extent(B)} <= {A['name']})"
                )
        return " and ".join(conds)

    def _vec_arange(self):
        if self._vec["ar"] is None:
            ctx = self._vec["ctx"]
            v, mv, step = ctx["var"], ctx["m"], ctx["step"]
            self._vec["lines"].append(
                f"_ar = _np.arange(l{v}, l{v} + {mv} * {step}, {step}, "
                f"dtype=_np.int64)"
            )
            self._vec["ar"] = "_ar"
        return self._vec["ar"]

    def _vec_load(self, addr_node, off):
        ctx = self._vec["ctx"]
        mv = ctx["m"]
        for si, st in enumerate(ctx["streams"]):
            if st["kind"] == "load" and st["node"] == (addr_node, off):
                break
        else:
            raise VecBail
        name = self._vec["names"].get(si)
        if name is None:
            stride = st["stride"]
            if st["op"] != "f64.load":
                raise VecBail
            if stride == 0:
                # Loop-invariant cell: alias checks guarantee no store
                # writes it, so one scalar read is exact.
                name = f"_s{si}"
                un = self.bind("u", "<d", "_u")
                self._vec["lines"].append(f"{name} = {un}(data, {st['name']})[0]")
                isvec = False
            elif stride % 8 == 0:
                se = stride // 8
                name = f"_w{si}"
                view = (
                    f"_np.frombuffer(data, _np.float64, "
                    f"({mv} - 1) * {se} + 1, {st['name']})"
                )
                if se != 1:
                    view += f"[::{se}]"
                self._vec["lines"].append(f"{name} = {view}")
                isvec = True
            else:
                raise VecBail
            self._vec["names"][si] = name
            self._vec["isvec"][si] = isvec
        return name, self._vec["isvec"][si]

    def _vecgen(self, node):
        kind = node[0]
        if kind == "const":
            _, val, ty = node
            if ty not in ("f64", "i32"):
                raise VecBail
            if isinstance(val, float) and (
                val != val or val in (float("inf"), float("-inf"))
            ):
                return self.bind("const", repr(val), "_k"), False
            return repr(val), False
        if kind == "local":
            _, j, ver = node
            if ver != self.lver[j]:
                raise VecBail
            ctx = self._vec["ctx"]
            if j == ctx["var"]:
                return self._vec_arange(), True
            if j in ctx["assigned"]:
                raise VecBail
            return f"l{j}", False
        if kind == "load":
            _, op, addr_node, off, _iv = node
            if op != "f64.load":
                raise VecBail
            return self._vec_load(addr_node, off)
        if kind == "bin":
            _, op, an, bn, iv = node
            a, av = self._vecgen(an)
            b, bv = self._vecgen(bn)
            isvec = av or bv
            if op in ("f64.add", "f64.sub", "f64.mul"):
                sym = {"f64.add": "+", "f64.sub": "-", "f64.mul": "*"}[op]
                return f"({a} {sym} {b})", isvec
            if op == "f64.div":
                if not isvec:
                    return f"{self.bind('bin', op, '_f')}({a}, {b})", False
                return f"({a} / {b})", True
            if iv is None:
                raise VecBail
            if op in ("i32.add", "i32.sub", "i32.mul"):
                sym = {"i32.add": "+", "i32.sub": "-", "i32.mul": "*"}[op]
                return f"({a} {sym} {b})", isvec
            if op in ("i32.rem_s", "i32.rem_u") and bn[0] == "const":
                return f"({a} % {bn[1]})", isvec
            if op in ("i32.div_s", "i32.div_u") and bn[0] == "const":
                return f"({a} // {bn[1]})", isvec
            if op == "i32.shl" and bn[0] == "const":
                return f"({a} << {bn[1] & 31})", isvec
            raise VecBail
        if kind == "un":
            _, op, an, _iv = node
            if op == "f64.convert_i32_s":
                if self._node_ival(an) is None:
                    raise VecBail
                a, av = self._vecgen(an)
                if av:
                    return f"({a}).astype(_np.float64)", True
                return f"float({a})", False
            raise VecBail
        raise VecBail

    # -- assembly ------------------------------------------------------
    def compile(self) -> dict:
        c0 = self.new_counter()
        self.emit(f"c{c0} += 1")
        self._walk(0, len(self.body), c0, None)
        if len(self.sym) != self.n_results:
            raise Bailout(
                f"body ends with {len(self.sym)} values, "
                f"expected {self.n_results}"
            )
        results = [v.py for v in self.sym]

        src = [""]  # header slot, filled once every env name is bound
        pad = "    "
        nlocals = len(self.local_types)
        if nlocals:
            src.append(pad + "L = f.locals")
            for i in range(0, nlocals, 8):
                src.append(
                    pad
                    + "; ".join(
                        f"l{j} = L[{j}]" for j in range(i, min(i + 8, nlocals))
                    )
                )
        if self.uses_mem and self.need:
            src.append(pad + f"if len(data) < {self.need}: return 0")
        ncounters = len(self.counter_pcs)
        for i in range(0, ncounters, 8):
            src.append(
                pad
                + "; ".join(
                    f"c{j} = 0" for j in range(i, min(i + 8, ncounters))
                )
            )
        src.extend(self.lines)
        flushes = [
            (i, pcs) for i, pcs in enumerate(self.counter_pcs) if pcs
        ]
        if flushes:
            src.append(pad + "if C is not None:")
            for i, pcs in flushes:
                name = self.bind("pcs", tuple(pcs), "_P")
                src.append(pad * 2 + f"if c{i}:")
                src.append(pad * 3 + f"for _pc in {name}: C[_pc] += c{i}")
        if results:
            src.append(pad + "S = f.stack")
            for py in results:
                src.append(pad + f"S.append({py})")
        src.append(pad + "return -1")
        args = ", ".join(f"{n}={n}" for n, _, _ in self.env_order)
        src[0] = f"def _t2(f, C{', ' + args if args else ''}):"

        env = [
            [name, kind, list(arg) if isinstance(arg, tuple) else arg]
            for name, kind, arg in self.env_order
        ]
        return {
            "version": TIER2_VERSION,
            "eligible": True,
            "source": "\n".join(src),
            "env": env,
            "need": self.need,
        }


def compile_function(
    body, matches, local_types, n_params, n_results
) -> dict:
    """Compile one function body to a tier-2 artifact (pure data).

    Returns ``{"eligible": False, "reason": ...}`` when the body falls
    outside the supported shape; never raises :class:`Bailout`.
    """
    try:
        compiler = _Compiler(body, matches, local_types, n_params, n_results)
        return compiler.compile()
    except Bailout as exc:
        return {
            "version": TIER2_VERSION,
            "eligible": False,
            "reason": str(exc),
        }


def vec_min() -> int:
    """NumPy engages for loops of at least this many iterations."""
    try:
        return int(os.environ.get("REPRO_TIER_VECMIN", "16"))
    except ValueError:
        return 16


def install(artifact: dict, memory):
    """Bind an eligible artifact against one instance's memory.

    Returns the handler ``fn(frame, counts) -> -1 (done) | 0 (deopt)``.
    """
    from repro.runtime import interpreter as I

    scope: Dict[str, Any] = {}
    binds: Dict[str, Any] = {}
    for name, kind, arg in artifact["env"]:
        if kind == "u":
            binds[name] = struct.Struct(arg).unpack_from
        elif kind == "p":
            binds[name] = struct.Struct(arg).pack_into
        elif kind == "bin":
            binds[name] = I._BINOPS[arg]
        elif kind == "un":
            binds[name] = I._UNOPS[arg]
        elif kind == "np":
            binds[name] = _np
        elif kind == "vecmin":
            binds[name] = vec_min()
        elif kind == "const":
            binds[name] = float(arg)
        elif kind == "pcs":
            binds[name] = tuple(arg)
        elif kind == "data":
            binds[name] = memory.data
        elif kind == "mem":
            binds[name] = memory
        elif kind == "touched":
            binds[name] = memory.touched_pages
        elif kind == "track":
            binds[name] = memory.track_pages
        else:  # pragma: no cover - artifact version gates this
            raise ValueError(f"unknown env kind {kind!r}")
    scope.update(binds)
    exec(compile(artifact["source"], "<tier2>", "exec"), scope)
    return scope["_t2"]
