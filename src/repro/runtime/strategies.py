"""The five bounds-checking strategies (§3.1 of the paper).

Each strategy bundles three things:

1. **functional semantics** for an out-of-bounds access
   (:meth:`BoundsStrategy.on_out_of_bounds`) — what the program observes;
2. **inline code shape** (:attr:`inline_check`) — what the compiler must
   emit before every memory access (nothing, a clamp, or a trap check);
3. **memory-management behaviour** (:attr:`grow_mechanism`,
   :attr:`fault_mechanism`, :attr:`reset_mechanism`) — which simulated
   kernel operations instance setup, ``memory.grow``, demand paging and
   per-iteration teardown use.  These drive the multithreaded-scaling
   experiments.

=========  ============  ===========================================
strategy   inline code   kernel behaviour
=========  ============  ===========================================
none       none          whole 8 GiB mapped RW up-front; grow is
                         bookkeeping; reset via madvise(DONTNEED)
clamp      cmp+select    same mapping as *none*
trap       cmp+branch    same mapping as *none*
mprotect   none          region PROT_NONE; grow/reset via mprotect
                         under the exclusive mmap_lock; OOB = SIGSEGV
uffd       none          region registered with userfaultfd; grow is
                         an atomic size update; faults are SIGBUS +
                         UFFDIO_ZEROPAGE; OOB = SIGBUS
=========  ============  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wasm.errors import Trap


@dataclass(frozen=True)
class BoundsStrategy:
    """One bounds-checking configuration."""

    name: str
    #: Inline code the compiler emits per access: '' | 'clamp' | 'trap'.
    inline_check: str
    #: How memory.grow is implemented: 'noop' | 'mprotect' | 'atomic'.
    grow_mechanism: str
    #: How first-touch faults are serviced: 'anon' | 'uffd'.
    fault_mechanism: str
    #: How per-iteration teardown works: 'madvise' | 'mprotect'.
    reset_mechanism: str
    #: Whether an OOB access is caught by a signal (vs inline code).
    signal_on_oob: bool

    def on_out_of_bounds(self, address: int, size: int, mem_size: int, write: bool):
        """Functional semantics of an out-of-bounds access.

        Returns a clamped address for ``clamp``; ``None`` for ``none``
        (access is silently absorbed by the RW-mapped guard region);
        raises :class:`Trap` otherwise.
        """
        if self.name == "clamp":
            return max(0, mem_size - size)
        if self.name == "none":
            return None
        raise Trap(
            "out-of-bounds-memory",
            f"{'store' if write else 'load'} of {size} bytes at {address:#x} "
            f"beyond memory size {mem_size:#x} ({self.name})",
        )


STRATEGIES: dict[str, BoundsStrategy] = {
    "none": BoundsStrategy(
        name="none",
        inline_check="",
        grow_mechanism="noop",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=False,
    ),
    "clamp": BoundsStrategy(
        name="clamp",
        inline_check="clamp",
        grow_mechanism="noop",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=False,
    ),
    "trap": BoundsStrategy(
        name="trap",
        inline_check="trap",
        grow_mechanism="noop",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=False,
    ),
    "mprotect": BoundsStrategy(
        name="mprotect",
        inline_check="",
        grow_mechanism="mprotect",
        fault_mechanism="anon",
        reset_mechanism="mprotect",
        signal_on_oob=True,
    ),
    "uffd": BoundsStrategy(
        name="uffd",
        inline_check="",
        grow_mechanism="atomic",
        fault_mechanism="uffd",
        reset_mechanism="madvise",
        signal_on_oob=True,
    ),
}

#: The order figures present strategies in.
STRATEGY_ORDER = ["none", "clamp", "trap", "mprotect", "uffd"]


def strategy_named(name: str) -> BoundsStrategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown bounds strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
