"""The bounds-checking strategies (§3.1 of the paper, plus extensions).

Each strategy bundles three things:

1. **functional semantics** for an out-of-bounds access
   (:meth:`BoundsStrategy.on_out_of_bounds`) — what the program observes;
2. **inline code shape** (:attr:`inline_check`) — what the compiler must
   emit before every memory access (nothing, a clamp, a trap check, or
   a hardware tag check);
3. **memory-management behaviour** (:attr:`grow_mechanism`,
   :attr:`fault_mechanism`, :attr:`reset_mechanism`) — which simulated
   kernel operations instance setup, ``memory.grow``, demand paging and
   per-iteration teardown use.  These drive the multithreaded-scaling
   experiments.

=========  ============  ===========================================
strategy   inline code   kernel behaviour
=========  ============  ===========================================
none       none          whole 8 GiB mapped RW up-front; grow is
                         bookkeeping; reset via madvise(DONTNEED)
clamp      cmp+select    same mapping as *none*
trap       cmp+branch    same mapping as *none*
mprotect   none          region PROT_NONE; grow/reset via mprotect
                         under the exclusive mmap_lock; OOB = SIGSEGV
uffd       none          region registered with userfaultfd; grow is
                         an atomic size update; faults are SIGBUS +
                         UFFDIO_ZEROPAGE; OOB = SIGBUS
mte        tag check     Arm MTE: the load/store pipe compares the
                         pointer's logical tag against the allocation
                         tag, so the check rides the access itself;
                         grow retags the new 16-byte granules in
                         userspace (no VMA traffic, no mmap_lock);
                         OOB = tag-check fault (SIGSEGV)
wasm64     cmp+branch    64-bit memory: no 8 GiB guard region exists,
                         so explicit checks are mandatory and the
                         guard-page strategies are rejected outright;
                         grow is bookkeeping, reset via madvise
=========  ============  ===========================================

The first five rows are the paper's strategy axis
(:data:`PAPER_STRATEGY_ORDER`); ``mte`` models CAGE-style hardware tag
checking and ``wasm64`` the eWAPA 64-bit-memory regime (see PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wasm.errors import Trap


@dataclass(frozen=True)
class BoundsStrategy:
    """One bounds-checking configuration."""

    name: str
    #: Inline code the compiler emits per access:
    #: '' | 'clamp' | 'trap' | 'mte'.
    inline_check: str
    #: How memory.grow is implemented:
    #: 'noop' | 'mprotect' | 'atomic' | 'retag'.
    grow_mechanism: str
    #: How first-touch faults are serviced: 'anon' | 'uffd'.
    fault_mechanism: str
    #: How per-iteration teardown works: 'madvise' | 'mprotect'.
    reset_mechanism: str
    #: Whether an OOB access is caught by a signal (vs inline code).
    signal_on_oob: bool
    #: Index width of the linear memory this strategy addresses.  32-bit
    #: memories can lean on the 8 GiB guard region; 64-bit memories
    #: (wasm64) cannot, so explicit checks become mandatory.
    addr_bits: int = 32
    #: Hardware memory-tagging granule in bytes (0 = no tagging).  A
    #: non-zero granule means every ``memory.grow`` must retag the new
    #: bytes granule-by-granule in userspace (Arm MTE: 16 bytes).
    tag_granule: int = 0

    @property
    def requires_memory_tagging(self) -> bool:
        """True when the ISA must provide a tagging extension (Arm MTE)."""
        return self.tag_granule > 0

    @property
    def uses_guard_region(self) -> bool:
        """True when OOB soundness rests on the 8 GiB guard mapping.

        Exactly the strategies with no inline check and no hardware
        tagging — the ones a 64-bit memory must reject, because a
        32-bit base + 32-bit offset bound is what makes the guard
        region cover every reachable address.
        """
        return self.addr_bits == 32 and not self.inline_check and not self.tag_granule

    def on_out_of_bounds(self, address: int, size: int, mem_size: int, write: bool):
        """Functional semantics of an out-of-bounds access.

        Returns a clamped address for ``clamp``; ``None`` for ``none``
        (access is silently absorbed by the RW-mapped guard region);
        raises :class:`Trap` otherwise.
        """
        if self.name == "clamp":
            return max(0, mem_size - size)
        if self.name == "none":
            return None
        raise Trap(
            "out-of-bounds-memory",
            f"{'store' if write else 'load'} of {size} bytes at {address:#x} "
            f"beyond memory size {mem_size:#x} ({self.name})",
        )


STRATEGIES: dict[str, BoundsStrategy] = {
    "none": BoundsStrategy(
        name="none",
        inline_check="",
        grow_mechanism="noop",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=False,
    ),
    "clamp": BoundsStrategy(
        name="clamp",
        inline_check="clamp",
        grow_mechanism="noop",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=False,
    ),
    "trap": BoundsStrategy(
        name="trap",
        inline_check="trap",
        grow_mechanism="noop",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=False,
    ),
    "mprotect": BoundsStrategy(
        name="mprotect",
        inline_check="",
        grow_mechanism="mprotect",
        fault_mechanism="anon",
        reset_mechanism="mprotect",
        signal_on_oob=True,
    ),
    "uffd": BoundsStrategy(
        name="uffd",
        inline_check="",
        grow_mechanism="atomic",
        fault_mechanism="uffd",
        reset_mechanism="madvise",
        signal_on_oob=True,
    ),
    "mte": BoundsStrategy(
        name="mte",
        inline_check="mte",
        grow_mechanism="retag",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=True,
        tag_granule=16,
    ),
    "wasm64": BoundsStrategy(
        name="wasm64",
        inline_check="trap",
        grow_mechanism="noop",
        fault_mechanism="anon",
        reset_mechanism="madvise",
        signal_on_oob=False,
        addr_bits=64,
    ),
}

#: The order figures present strategies in.  The paper's five come
#: first, then the hardware-assisted extensions.
STRATEGY_ORDER = ["none", "clamp", "trap", "mprotect", "uffd", "mte", "wasm64"]

#: Exactly the paper's §3.1 strategy axis — fig2–fig6 grids iterate
#: this so adding an extension strategy never changes their data.
PAPER_STRATEGY_ORDER = ["none", "clamp", "trap", "mprotect", "uffd"]


def strategy_named(name: str) -> BoundsStrategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        # List the documented order first, then any runtime-registered
        # extensions (e.g. the projected 'cheri' strategy) so the
        # message always matches what the figures and docs show.
        extras = sorted(set(STRATEGIES) - set(STRATEGY_ORDER))
        raise ValueError(
            f"unknown bounds strategy {name!r}; choose from "
            f"{STRATEGY_ORDER + extras}"
        ) from None
