"""Declarative host-interface registry for Wasm import shims.

Before this module, adding one WASI call meant four parallel edits: a
method, a signature tuple, a ``HostFunc`` wiring entry, and ad-hoc
bookkeeping.  Now a host call is *one decorated method*::

    class MyEnv(HostInterface):
        MODULE = "my_host"

        @syscall("poke", params=(I32,), results=(I32,))
        def poke(self, ptr: int) -> int:
            ...
            return ERRNO_SUCCESS

:func:`HostInterface.imports` walks the decorated methods and derives
the ``{(module, name): HostFunc}`` mapping the interpreter links
against; every call is routed through one wrapper that

* records the call into a :class:`SyscallRecorder` (per-name call and
  payload-byte counts plus log2 payload buckets — the shape the
  harness replays through the simulated kernel so each recorded call
  pays modeled kernel-crossing cost uniformly), and
* emits a ``syscall.hostcall`` trace event when tracing is enabled
  (stamped ts 0.0: host calls execute during real profiling, before
  simulated time exists — the same convention as ``runtime.compile``).

Methods return their WASI errno; a method that moved payload returns
``(errno, nbytes)`` instead, and one whose cost regime differs from
its import name (e.g. a read from a direct-I/O file) returns
``(errno, nbytes, cost_name)``.  The wrapper strips the bookkeeping
and hands the interpreter the bare errno.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional, Tuple

from repro.runtime.interpreter import HostFunc, Interpreter
from repro.trace.tracer import TRACE
from repro.wasm.errors import Trap
from repro.wasm.types import ValType

#: Trace event: one host call observed at the shim (profiling) layer.
#: The kernel-side replay emits ``syscall.wasi`` with simulated time;
#: this span carries the call-by-call view (sys, bytes, errno).
HOSTCALL = "syscall.hostcall"

_SPEC_ATTR = "__syscall_spec__"


def syscall(
    name: str,
    params: Tuple[ValType, ...],
    results: Tuple[ValType, ...],
) -> Callable:
    """Mark a method as one host syscall with its Wasm signature."""

    def decorate(fn: Callable) -> Callable:
        setattr(fn, _SPEC_ATTR, (name, tuple(params), tuple(results)))
        return fn

    return decorate


def payload_bucket(nbytes: int) -> int:
    """log2 payload bucket: 0 for empty, else bit_length (1→1, 2-3→2…)."""
    return nbytes.bit_length() if nbytes > 0 else 0


class SyscallRecorder:
    """Per-syscall-name call/byte totals with log2 payload buckets.

    The bucket table keys on :func:`payload_bucket` of each call's
    payload and holds ``[calls, bytes]`` pairs — enough for the harness
    to rebuild per-call average sizes per bucket (so a workload mixing
    4-byte and 64 KiB reads is not priced at its meaningless mean) and
    for the trace layer's latency histograms to stay faithful.
    """

    def __init__(self) -> None:
        self.table: Dict[str, dict] = {}

    def record(self, name: str, nbytes: int = 0) -> None:
        entry = self.table.setdefault(
            name, {"calls": 0, "bytes": 0, "buckets": {}}
        )
        entry["calls"] += 1
        entry["bytes"] += nbytes
        bucket = payload_bucket(nbytes)
        pair = entry["buckets"].setdefault(bucket, [0, 0])
        pair[0] += 1
        pair[1] += nbytes

    def counts(self) -> Dict[str, int]:
        return {name: entry["calls"] for name, entry in self.table.items()}

    def total_calls(self) -> int:
        return sum(entry["calls"] for entry in self.table.values())

    def snapshot(self) -> Dict[str, dict]:
        """JSON-ready deep copy (sorted names, string bucket keys)."""
        return {
            name: {
                "calls": entry["calls"],
                "bytes": entry["bytes"],
                "buckets": {
                    str(bucket): list(pair)
                    for bucket, pair in sorted(entry["buckets"].items())
                },
            }
            for name, entry in sorted(self.table.items())
        }

    def clear(self) -> None:
        self.table.clear()


class HostInterface:
    """Base for import shims: binding, recording, auto-derived wiring."""

    #: Wasm import-module name the decorated syscalls live under.
    MODULE = "env"

    def __init__(self) -> None:
        self.recorder = SyscallRecorder()
        self._interp: Optional[Interpreter] = None

    # ------------------------------------------------------------------
    def bind(self, interp: Interpreter) -> "HostInterface":
        """Give the shim access to the instance's linear memory."""
        self._interp = interp
        return self

    @property
    def _memory(self):
        if self._interp is None or self._interp.memory is None:
            raise Trap(
                "wasi-unbound",
                f"call {type(self).__name__}.bind(interp) first",
            )
        return self._interp.memory

    # ------------------------------------------------------------------
    @classmethod
    def syscall_specs(cls) -> Dict[str, Tuple[Tuple[ValType, ...], Tuple[ValType, ...]]]:
        """Declared syscalls: name → (params, results), MRO-resolved."""
        specs: Dict[str, Tuple[tuple, tuple]] = {}
        for attr in dir(cls):
            fn = getattr(cls, attr, None)
            spec = getattr(fn, _SPEC_ATTR, None)
            if spec is not None:
                name, params, results = spec
                specs[name] = (params, results)
        return specs

    def _wrap(self, name: str, method: Callable) -> Callable:
        recorder = self.recorder

        @functools.wraps(method)
        def wrapper(*args: Any):
            try:
                result = method(*args)
            except Trap:
                # proc_exit and friends still crossed the kernel.
                recorder.record(name, 0)
                raise
            nbytes, cost_name = 0, name
            if isinstance(result, tuple):
                if len(result) == 3:
                    errno, nbytes, cost_name = result
                else:
                    errno, nbytes = result
            else:
                errno = result
            recorder.record(cost_name, nbytes)
            if TRACE.enabled:
                TRACE.emit(
                    0.0, HOSTCALL,
                    sys=cost_name, bytes=nbytes,
                    errno=0 if errno is None else errno,
                )
            return errno

        return wrapper

    def imports(self) -> Dict[Tuple[str, str], HostFunc]:
        """The interpreter-ready import map, derived from decorators.

        Kept as the public entry point so existing
        ``Interpreter(module, imports=env.imports())`` call sites are
        untouched by the registry redesign.
        """
        table: Dict[Tuple[str, str], HostFunc] = {}
        for attr in dir(type(self)):
            fn = getattr(type(self), attr, None)
            spec = getattr(fn, _SPEC_ATTR, None)
            if spec is None:
                continue
            name, params, results = spec
            bound = getattr(self, attr)
            table[(self.MODULE, name)] = HostFunc(
                params, results, self._wrap(name, bound), name=name
            )
        return table
