"""Pre-decode plans for the fast-path interpreter.

A :class:`FunctionPlan` is everything the interpreter needs to turn a
flat instruction body into a direct-threaded handler table *before*
execution starts:

* ``matches`` — the block/loop/if → end/else resolution (identical to
  what the legacy interpreter computed per call);
* ``targets`` — every pc that can be entered non-sequentially (branch
  landing sites); fusion must never swallow one of these;
* ``regions`` — the superinstruction schedule: non-overlapping runs of
  instructions that one fused handler executes in a single dispatch.

Plans are pure data (deterministic functions of the body), so they are
serialisable and memoised in the content-addressed profile cache
(``.cache/profiles/predecode-<module digest>-<build digest>.json``).
The build digest covers the interpreter/pre-decode/memory sources, so a
cached plan can never outlive the interpreter build that produced it —
and ``leaps-bench diffcheck --json`` embeds the same digest so an
equivalence report is attributable to an exact interpreter build.

Fusion safety rules (checked structurally here, relied on by the
interpreter's handlers):

1. no interior pc of a region is a jump target;
2. only the *last* instruction of a region may trap — so the
   per-pc execution counts of the interior pcs always equal the head
   pc's count and can be reconstructed exactly at profile time;
3. regions contain no calls, so no reentrancy can observe the
   (elided) transient stack states.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.wasm import opcodes
from repro.wasm.instructions import Instr

#: Bump when the plan format or the fusion pattern set changes.
PREDECODE_VERSION = 2

# ----------------------------------------------------------------------
# Operator classes (derived from the one opcode table)
# ----------------------------------------------------------------------
#: Two-operand numeric operators (the interpreter's _BINOPS domain).
BINOP_NAMES = frozenset(
    info.name
    for info in opcodes.BY_NAME.values()
    if info.category in ("arith", "compare") and len(info.params) == 2
)

#: Binary operators that can raise a Trap (divide/remainder family).
TRAPPING_BINOPS = frozenset(
    name for name in BINOP_NAMES if ".div_" in name or ".rem_" in name
)

#: Binary operators guaranteed not to trap (safe mid-region).
NONTRAP_BINOPS = BINOP_NAMES - TRAPPING_BINOPS

#: Two-operand comparisons (always produce i32, never trap).
CMP_NAMES = frozenset(
    info.name
    for info in opcodes.BY_NAME.values()
    if info.category == "compare" and len(info.params) == 2
)

#: One-operand numeric operators (the interpreter's _UNOPS domain).
UNOP_NAMES = frozenset(
    info.name
    for info in opcodes.BY_NAME.values()
    if info.category in ("arith", "compare", "convert") and len(info.params) == 1
)

#: Unary operators that can raise a Trap (float->int truncations).
TRAPPING_UNOPS = frozenset(name for name in UNOP_NAMES if ".trunc_f" in name)

#: Unary operators guaranteed not to trap (safe mid-region).
NONTRAP_UNOPS = UNOP_NAMES - TRAPPING_UNOPS

CONST_NAMES = frozenset(("i32.const", "i64.const", "f32.const", "f64.const"))
LOAD_NAMES = frozenset(
    info.name for info in opcodes.BY_NAME.values() if info.category == "load"
)
STORE_NAMES = frozenset(
    info.name for info in opcodes.BY_NAME.values() if info.category == "store"
)


# ----------------------------------------------------------------------
# Superinstruction regions
# ----------------------------------------------------------------------
# A fusable region is a maximal straight-line run of *pure stack ops*
# (locals, constants, non-trapping numerics, drop/select), optionally
# headed by a ``loop`` (its label push is part of the superinstruction)
# and optionally closed by exactly one *terminator*: a memory access,
# a trapping numeric op, or a branch (br / br_if / return).  Keeping
# every trap- or exit-capable op at the very end is what makes the
# per-pc count reconstruction in ``take_profile`` exact.
#
# The interpreter compiles each region to one Python function via
# symbolic stack evaluation (see ``interpreter._gen_region``), so a
# whole PolyBench inner-loop statement collapses into a single
# dispatch.

#: Pure ops: no traps, no control transfer, no memory side effects.
SAFE_OPS = (
    frozenset(
        (
            "local.get",
            "local.set",
            "local.tee",
            "drop",
            "select",
        )
    )
    | CONST_NAMES
    | NONTRAP_BINOPS
    | NONTRAP_UNOPS
)

#: Ops that may end a region (trap-capable or control-exiting).
TERMINATOR_OPS = (
    LOAD_NAMES
    | STORE_NAMES
    | TRAPPING_BINOPS
    | TRAPPING_UNOPS
    | frozenset(("br", "br_if", "return"))
)


@dataclass(frozen=True)
class FusedRegion:
    """One superinstruction: ``length`` body pcs starting at ``head``."""

    head: int
    length: int
    pattern: str

    @property
    def tail_pcs(self) -> range:
        return range(self.head + 1, self.head + self.length)


@dataclass
class FunctionPlan:
    """Pre-decode result for one function body."""

    #: opener pc -> (end_pc, else_pc); else pc -> end_pc.
    matches: Dict[int, Any] = field(default_factory=dict)
    #: pcs reachable non-sequentially (branch landing sites).
    targets: frozenset = frozenset()
    #: non-overlapping fusion regions, ordered by head pc.
    regions: List[FusedRegion] = field(default_factory=list)


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
def match_control(body: Sequence[Instr]) -> Dict[int, Any]:
    """Map each block/loop/if pc to (end_pc, else_pc); else pc to end_pc."""
    matches: Dict[int, Any] = {}
    stack: List[Tuple[int, Optional[int]]] = []
    for pc, ins in enumerate(body):
        op = ins.op
        if op in ("block", "loop", "if"):
            stack.append((pc, None))
        elif op == "else":
            opener, _ = stack.pop()
            stack.append((opener, pc))
        elif op == "end":
            opener, else_pc = stack.pop()
            matches[opener] = (pc, else_pc)
            if else_pc is not None:
                matches[else_pc] = pc
    return matches


def jump_targets(body: Sequence[Instr], matches: Dict[int, Any]) -> frozenset:
    """Every pc execution can reach other than by falling through.

    Conservative superset: for each structured opener this includes the
    end, the slot after the end, the loop header itself and both else
    landing sites — cheap to compute and safe for fusion (a region may
    *start* at a target, never contain one).
    """
    targets = set()
    for pc, ins in enumerate(body):
        op = ins.op
        if op in ("block", "loop", "if"):
            end_pc, else_pc = matches[pc]
            targets.add(end_pc)
            targets.add(end_pc + 1)
            if op == "loop":
                targets.add(pc)
            if else_pc is not None:
                targets.add(else_pc)
                targets.add(else_pc + 1)
    return frozenset(targets)


def find_regions(
    body: Sequence[Instr], targets: frozenset
) -> List[FusedRegion]:
    """Maximal-straight-line superinstruction schedule for one body.

    Scans left to right; at each pc tries to grow the longest run of
    SAFE_OPS (optionally loop-headed, optionally terminator-closed)
    whose interior never lands on a jump target.  Runs shorter than
    two instructions gain nothing and are left unfused.
    """
    regions: List[FusedRegion] = []
    ops = [ins.op for ins in body]
    n = len(ops)
    pc = 0
    while pc < n:
        i = pc
        if ops[i] == "loop":
            i += 1
        while i < n and ops[i] in SAFE_OPS and (i == pc or i not in targets):
            i += 1
        if (
            i < n
            and i > pc
            and i not in targets
            and ops[i] in TERMINATOR_OPS
        ):
            i += 1
        if ops[pc] == "loop" and i == pc + 1:
            i = pc  # a bare loop opener fuses with nothing
        if i - pc >= 2:
            regions.append(FusedRegion(pc, i - pc, "gen"))
            pc = i
        else:
            pc += 1
    return regions


def plan_function(body: Sequence[Instr], fuse: bool = True) -> FunctionPlan:
    """Pre-decode one function body."""
    matches = match_control(body)
    targets = jump_targets(body, matches)
    regions = find_regions(body, targets) if fuse else []
    return FunctionPlan(matches=matches, targets=targets, regions=regions)


# ----------------------------------------------------------------------
# Build digest + content-addressed plan cache
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def interpreter_build_digest() -> str:
    """SHA-256 over the interpreter build: sources + plan version.

    Identifies the exact semantics+fusion implementation a run used;
    embedded in diffcheck reports and the plan cache filenames.
    """
    # Deferred: circular (interpreter/tiering import this module).
    from repro.runtime import interpreter, memory, tiering, vectorize

    digest = hashlib.sha256()
    digest.update(f"predecode-v{PREDECODE_VERSION}".encode())
    for module in (interpreter, memory, tiering, vectorize):
        digest.update(Path(module.__file__).read_bytes())
    digest.update(Path(__file__).read_bytes())
    return digest.hexdigest()


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path(".cache") / "profiles"


def prune_stale_artifacts(cache_dir: Optional[Path] = None) -> List[str]:
    """Evict build-keyed cache entries from *other* interpreter builds.

    Pre-decode plans and tier-2 artifacts embed the interpreter-build
    digest in their filenames, so every source change strands the
    previous build's files; left alone the cache grows without bound.
    Removes every ``predecode-*``/``tier2-*`` entry whose build suffix
    is not the current one and returns the removed filenames.  Profile
    JSONs (``<workload>-<size>-<digest>.json``) are content-addressed
    by module digest only and are left untouched.
    """
    root = cache_dir if cache_dir is not None else _cache_dir()
    build = interpreter_build_digest()[:8]
    removed: List[str] = []
    try:
        entries = sorted(root.glob("predecode-*.json")) + sorted(
            root.glob("tier2-*.json")
        )
    except OSError:  # pragma: no cover - unreadable cache dir
        return removed
    for path in entries:
        if path.stem.rsplit("-", 1)[-1] == build:
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent eviction
            continue
        removed.append(path.name)
    return removed


def _plan_to_json(plans: Dict[int, FunctionPlan]) -> dict:
    return {
        "version": PREDECODE_VERSION,
        "funcs": {
            str(index): {
                "matches": {
                    str(pc): value for pc, value in plan.matches.items()
                },
                "targets": sorted(plan.targets),
                "regions": [
                    [r.head, r.length, r.pattern] for r in plan.regions
                ],
            }
            for index, plan in plans.items()
        },
    }


def _plan_from_json(raw: dict) -> Dict[int, FunctionPlan]:
    if raw.get("version") != PREDECODE_VERSION:
        raise ValueError("plan version mismatch")
    plans: Dict[int, FunctionPlan] = {}
    for index, entry in raw["funcs"].items():
        matches: Dict[int, Any] = {}
        for pc, value in entry["matches"].items():
            matches[int(pc)] = tuple(value) if isinstance(value, list) else value
        plans[int(index)] = FunctionPlan(
            matches=matches,
            targets=frozenset(entry["targets"]),
            regions=[FusedRegion(*r) for r in entry["regions"]],
        )
    return plans


def plans_for_module(
    module, module_digest: Optional[str] = None, fuse: bool = True
) -> Dict[int, FunctionPlan]:
    """Pre-decode every defined function body of ``module``.

    Keys are positions in ``module.funcs`` (defined-function space).
    With a ``module_digest`` the fused plan is memoised on disk in the
    profile cache, keyed on (module content, interpreter build); the
    un-fused plan is cheap enough to always recompute.
    """
    if module_digest and fuse:
        path = _cache_dir() / (
            f"predecode-{module_digest[:16]}-"
            f"{interpreter_build_digest()[:8]}.json"
        )
        if path.exists():
            try:
                return _plan_from_json(json.loads(path.read_text()))
            except (ValueError, KeyError, TypeError):
                pass  # stale/corrupt entry: recompute below
        plans = {
            index: plan_function(func.body, fuse=True)
            for index, func in enumerate(module.funcs)
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(_plan_to_json(plans)))
            prune_stale_artifacts()
        except OSError:
            pass  # read-only filesystem: plan still usable in-memory
        return plans
    return {
        index: plan_function(func.body, fuse=fuse)
        for index, func in enumerate(module.funcs)
    }
