"""Dynamic execution profiles.

An :class:`ExecutionProfile` is what one functional run of a workload
produces and what the timing pipeline consumes (DESIGN.md §5):

* exact per-instruction execution counts for every defined function
  (``instr_counts[func_index][pc]``), from which any compiler
  configuration can be costed by a dot product;
* aggregate opcode totals (for reporting and the interpreter model);
* memory observables: loads/stores, distinct 4 KiB pages touched, and
  ``memory.grow`` events — the inputs to the kernel-event replay.

Profiles are deterministic for deterministic workloads, so they are
computed once per (workload, size) and shared across every
runtime × strategy × ISA configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class ExecutionProfile:
    """The dynamic behaviour of one workload run."""

    workload: str = ""
    size: str = ""
    #: func index (absolute) -> per-pc execution counts.
    instr_counts: Dict[int, List[int]] = field(default_factory=dict)
    #: opcode name -> total dynamic executions.
    op_totals: Dict[str, int] = field(default_factory=dict)
    mem_loads: int = 0
    mem_stores: int = 0
    pages_touched: int = 0
    #: (pages_before, pages_after) per memory.grow during the run.
    grow_events: List[Tuple[int, int]] = field(default_factory=list)
    peak_pages: int = 0
    total_instrs: int = 0
    #: Host-syscall census from the WASI shim, empty for compute-family
    #: workloads: name -> {calls, bytes, buckets {log2 -> [calls, bytes]}}
    #: (a :meth:`repro.runtime.hostiface.SyscallRecorder.snapshot`).
    syscalls: Dict[str, dict] = field(default_factory=dict)

    @property
    def mem_accesses(self) -> int:
        return self.mem_loads + self.mem_stores

    @property
    def mem_access_fraction(self) -> float:
        """Share of dynamic instructions that touch memory.

        Hennessy & Patterson put loads+stores at ~40 % of x86-64
        programs (paper §2.3); PolyBench kernels land between ~15 %
        and ~45 % depending on how compute-dense the inner loop is.
        """
        if self.total_instrs == 0:
            return 0.0
        return self.mem_accesses / self.total_instrs

    def merge_totals(self) -> None:
        """Recompute total_instrs from op_totals (consistency helper)."""
        self.total_instrs = sum(self.op_totals.values())
