"""A deterministic, kernel-backed WASI preview-1 surface.

The paper's runtimes execute benchmarks compiled for ``wasm32-wasi``
(§2.1, §3.2); eWAPA (PAPERS.md) shows that for server-side Wasm the
WASI/syscall boundary — not userspace checks — can dominate end-to-end
cost.  This module is the WASI side of that scenario axis: a preview-1
surface whose every call is declared via the
:mod:`repro.runtime.hostiface` registry, recorded per name and payload
size, and later replayed through the simulated kernel's
``sys_wasi_batch`` so each crossing pays the modeled ISA + kernel
cost.

Three properties the reproduction needs:

* **deterministic**: the clock is a virtual nanosecond counter,
  ``random_get`` is a seeded xorshift stream, and the filesystem is a
  :class:`repro.oskernel.fdtable.FdTable` of caller-supplied buffers —
  module output never varies between runs or interpreter tiers;
* **capturing**: writes to stdout/stderr (and any opened file) land in
  buffers the host can inspect;
* **accounted**: the inherited :class:`SyscallRecorder` holds per-call
  counts, payload bytes, and log2 payload buckets for the harness.

Usage::

    wasi = WasiEnvironment(argv=["bench"], seed=7,
                           files={"in.txt": b"..."})
    interp = Interpreter(module, imports=wasi.imports())
    wasi.bind(interp)          # gives the shim access to linear memory
    interp.invoke("bench")
    print(wasi.stdout(), wasi.recorder.counts())
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.oskernel import fdtable as fdt
from repro.oskernel.fdtable import FdTable
from repro.runtime.hostiface import HostInterface, syscall
from repro.wasm.errors import Trap
from repro.wasm.types import ValType

I32, I64 = ValType.I32, ValType.I64

#: WASI errno values used by the shim (re-exported from the fd table so
#: kernel and ABI layers agree by construction).
ERRNO_SUCCESS = fdt.ERRNO_SUCCESS
ERRNO_BADF = fdt.ERRNO_BADF
ERRNO_INVAL = fdt.ERRNO_INVAL
ERRNO_NOENT = fdt.ERRNO_NOENT

#: WASI preview-1 rights bits consulted by path_open/fd_fdstat_get.
RIGHT_FD_READ = 1 << 1
RIGHT_FD_SEEK = 1 << 2
RIGHT_FD_WRITE = 1 << 6

#: Virtual clock rate: each clock_time_get advances this many ns, so
#: repeated reads are monotonic but fully reproducible.
_CLOCK_STEP_NS = 1_000

_MASK64 = 0xFFFFFFFFFFFFFFFF


class ProcExit(Trap):
    """Raised when the module calls ``proc_exit`` (kind carries it)."""

    def __init__(self, code: int) -> None:
        super().__init__("proc-exit", f"exit code {code}")
        self.code = code


class WasiEnvironment(HostInterface):
    """State backing one module instance's WASI imports."""

    MODULE = "wasi_snapshot_preview1"

    def __init__(
        self,
        argv: Optional[List[str]] = None,
        seed: int = 0,
        files: Optional[Dict[str, bytes]] = None,
        stdin: bytes = b"",
        direct: Iterable[str] = (),
        environ: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__()
        self.argv = list(argv or ["module"])
        self.environ = dict(environ or {})
        self._rand_state = (seed * 2654435761 + 0x9E3779B9) & _MASK64 or 1
        self._clock_ns = 0
        self.fdtable = FdTable(files=files, stdin=stdin, direct=direct)

    # ------------------------------------------------------------------
    def stdout(self) -> str:
        return self.fdtable.output(1).decode("utf-8", errors="replace")

    def stderr(self) -> str:
        return self.fdtable.output(2).decode("utf-8", errors="replace")

    def _environ_block(self) -> List[bytes]:
        return [
            f"{key}={value}".encode() + b"\x00"
            for key, value in self.environ.items()
        ]

    def _cost_name(self, base: str, fd: int) -> str:
        """Cost key for an fd operation: ``@direct`` when the file
        misses the simulated page cache."""
        return f"{base}@direct" if self.fdtable.is_direct(fd) else base

    # ------------------------------------------------------------------
    # Arguments and environment
    # ------------------------------------------------------------------
    @syscall("args_sizes_get", params=(I32, I32), results=(I32,))
    def args_sizes_get(self, argc_ptr: int, buf_size_ptr: int) -> int:
        memory = self._memory
        memory.store_u32(argc_ptr, len(self.argv))
        memory.store_u32(buf_size_ptr, sum(len(a) + 1 for a in self.argv))
        return ERRNO_SUCCESS

    @syscall("args_get", params=(I32, I32), results=(I32,))
    def args_get(self, argv_ptr: int, buf_ptr: int):
        memory = self._memory
        cursor = buf_ptr
        for index, arg in enumerate(self.argv):
            memory.store_u32(argv_ptr + 4 * index, cursor)
            raw = arg.encode() + b"\x00"
            memory.store_bytes(cursor, raw)
            cursor += len(raw)
        return ERRNO_SUCCESS, cursor - buf_ptr

    @syscall("environ_sizes_get", params=(I32, I32), results=(I32,))
    def environ_sizes_get(self, count_ptr: int, buf_size_ptr: int) -> int:
        memory = self._memory
        block = self._environ_block()
        memory.store_u32(count_ptr, len(block))
        memory.store_u32(buf_size_ptr, sum(len(entry) for entry in block))
        return ERRNO_SUCCESS

    @syscall("environ_get", params=(I32, I32), results=(I32,))
    def environ_get(self, environ_ptr: int, buf_ptr: int):
        memory = self._memory
        cursor = buf_ptr
        for index, entry in enumerate(self._environ_block()):
            memory.store_u32(environ_ptr + 4 * index, cursor)
            memory.store_bytes(cursor, entry)
            cursor += len(entry)
        return ERRNO_SUCCESS, cursor - buf_ptr

    # ------------------------------------------------------------------
    # Clock, randomness, polling
    # ------------------------------------------------------------------
    @syscall("clock_time_get", params=(I32, I64, I32), results=(I32,))
    def clock_time_get(self, clock_id: int, _precision: int, time_ptr: int) -> int:
        if clock_id not in (0, 1):  # realtime, monotonic
            # Determinism contract: a rejected read must not tick the
            # virtual clock (regression-tested).
            return ERRNO_INVAL
        self._clock_ns += _CLOCK_STEP_NS
        self._memory.store_u64(time_ptr, self._clock_ns)
        return ERRNO_SUCCESS

    @syscall("random_get", params=(I32, I32), results=(I32,))
    def random_get(self, buf_ptr: int, buf_len: int):
        memory = self._memory
        out = bytearray()
        state = self._rand_state
        # Determinism contract: buf_len == 0 never advances the
        # xorshift state (the loop body must not run even once).
        while len(out) < buf_len:
            state ^= (state << 13) & _MASK64
            state ^= state >> 7
            state ^= (state << 17) & _MASK64
            out += state.to_bytes(8, "little")
        self._rand_state = state
        memory.store_bytes(buf_ptr, bytes(out[:buf_len]))
        return ERRNO_SUCCESS, buf_len

    @syscall("poll_oneoff", params=(I32, I32, I32, I32), results=(I32,))
    def poll_oneoff(
        self, subs_ptr: int, events_ptr: int, nsubscriptions: int,
        nevents_ptr: int,
    ) -> int:
        """poll_oneoff-lite: every subscription is immediately ready.

        Clock subscriptions resolve at the virtual clock (one tick per
        subscription, modeling the timer-queue visit); fd subscriptions
        are always readable/writable since the fd table never blocks.
        """
        if nsubscriptions <= 0:
            return ERRNO_INVAL
        memory = self._memory
        for index in range(nsubscriptions):
            sub = subs_ptr + 48 * index
            userdata = memory.load_u32(sub) | (memory.load_u32(sub + 4) << 32)
            tag = memory.load_u32(sub + 8) & 0xFF
            self._clock_ns += _CLOCK_STEP_NS
            event = events_ptr + 32 * index
            memory.store_u32(event, userdata & 0xFFFFFFFF)
            memory.store_u32(event + 4, (userdata >> 32) & 0xFFFFFFFF)
            # errno u16 + type u8 packed into one word; remaining
            # payload (nbytes/flags) zeroed.
            memory.store_u32(event + 8, (tag & 0xFF) << 16)
            memory.store_u32(event + 12, 0)
            memory.store_u32(event + 16, 0)
            memory.store_u32(event + 20, 0)
            memory.store_u32(event + 24, 0)
            memory.store_u32(event + 28, 0)
        memory.store_u32(nevents_ptr, nsubscriptions)
        return ERRNO_SUCCESS

    # ------------------------------------------------------------------
    # File descriptors
    # ------------------------------------------------------------------
    @syscall("fd_write", params=(I32, I32, I32, I32), results=(I32,))
    def fd_write(self, fd: int, iovs_ptr: int, iovs_len: int, nwritten_ptr: int):
        memory = self._memory
        payload = bytearray()
        for index in range(iovs_len):
            base = memory.load_u32(iovs_ptr + 8 * index)
            length = memory.load_u32(iovs_ptr + 8 * index + 4)
            payload += memory.load_bytes(base, length)
        errno, written = self.fdtable.write(fd, bytes(payload))
        if errno != ERRNO_SUCCESS:
            return errno
        memory.store_u32(nwritten_ptr, written)
        return ERRNO_SUCCESS, written, self._cost_name("fd_write", fd)

    @syscall("fd_read", params=(I32, I32, I32, I32), results=(I32,))
    def fd_read(self, fd: int, iovs_ptr: int, iovs_len: int, nread_ptr: int):
        memory = self._memory
        total = 0
        cost = self._cost_name("fd_read", fd)
        for index in range(iovs_len):
            base = memory.load_u32(iovs_ptr + 8 * index)
            length = memory.load_u32(iovs_ptr + 8 * index + 4)
            errno, chunk = self.fdtable.read(fd, length)
            if errno != ERRNO_SUCCESS:
                return errno
            memory.store_bytes(base, chunk)
            total += len(chunk)
            if len(chunk) < length:
                break
        memory.store_u32(nread_ptr, total)
        return ERRNO_SUCCESS, total, cost

    @syscall("fd_seek", params=(I32, I64, I32, I32), results=(I32,))
    def fd_seek(self, fd: int, offset: int, whence: int, newoffset_ptr: int) -> int:
        errno, pos = self.fdtable.seek(fd, offset, whence)
        if errno != ERRNO_SUCCESS:
            return errno
        self._memory.store_u64(newoffset_ptr, pos)
        return ERRNO_SUCCESS

    @syscall("fd_close", params=(I32,), results=(I32,))
    def fd_close(self, fd: int) -> int:
        return self.fdtable.close(fd)

    @syscall("fd_fdstat_get", params=(I32, I32), results=(I32,))
    def fd_fdstat_get(self, fd: int, stat_ptr: int) -> int:
        errno, (filetype, flags) = self.fdtable.fdstat(fd)
        if errno != ERRNO_SUCCESS:
            return errno
        file = self.fdtable.lookup(fd)
        rights = 0
        if file.readable:
            rights |= RIGHT_FD_READ
        if file.writable:
            rights |= RIGHT_FD_WRITE
        if file.kind == "file":
            rights |= RIGHT_FD_SEEK
        stat = bytearray(24)
        stat[0] = filetype
        stat[2:4] = flags.to_bytes(2, "little")
        stat[8:16] = rights.to_bytes(8, "little")
        stat[16:24] = rights.to_bytes(8, "little")
        self._memory.store_bytes(stat_ptr, bytes(stat))
        return ERRNO_SUCCESS

    @syscall(
        "path_open",
        params=(I32, I32, I32, I32, I32, I64, I64, I32, I32),
        results=(I32,),
    )
    def path_open(
        self, dirfd: int, _dirflags: int, path_ptr: int, path_len: int,
        oflags: int, rights_base: int, _rights_inheriting: int,
        fdflags: int, opened_fd_ptr: int,
    ):
        memory = self._memory
        try:
            path = memory.load_bytes(path_ptr, path_len).decode()
        except UnicodeDecodeError:
            return ERRNO_INVAL
        errno, fd = self.fdtable.open_path(
            dirfd, path, oflags=oflags, fdflags=fdflags,
            write=bool(rights_base & RIGHT_FD_WRITE),
        )
        if errno != ERRNO_SUCCESS:
            return errno
        memory.store_u32(opened_fd_ptr, fd)
        return ERRNO_SUCCESS, path_len

    # ------------------------------------------------------------------
    @syscall("proc_exit", params=(I32,), results=())
    def proc_exit(self, code: int) -> None:
        raise ProcExit(code)
