"""A minimal, deterministic WASI preview-1 shim.

The paper's runtimes execute benchmarks compiled for ``wasm32-wasi``
(§2.1, §3.2): the WebAssembly System Interface provides the POSIX-ish
environment — argument strings, a monotonic clock, stdout, randomness,
process exit.  This shim implements the handful of syscalls numeric
benchmarks actually use, with two properties the reproduction needs:

* **deterministic**: the clock is a virtual nanosecond counter and
  ``random_get`` is a seeded xorshift stream, so module output never
  varies between runs;
* **capturing**: ``fd_write`` to stdout/stderr lands in Python
  buffers the host can inspect.

Usage::

    wasi = WasiEnvironment(argv=["bench"], seed=7)
    interp = Interpreter(module, imports=wasi.imports())
    wasi.bind(interp)          # gives the shim access to linear memory
    interp.invoke("bench")
    print(wasi.stdout())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.runtime.interpreter import HostFunc, Interpreter
from repro.wasm.errors import Trap
from repro.wasm.types import ValType

I32, I64 = ValType.I32, ValType.I64

#: WASI errno values used by the shim.
ERRNO_SUCCESS = 0
ERRNO_BADF = 8
ERRNO_INVAL = 28

#: Virtual clock rate: each clock_time_get advances this many ns, so
#: repeated reads are monotonic but fully reproducible.
_CLOCK_STEP_NS = 1_000


class ProcExit(Trap):
    """Raised when the module calls ``proc_exit`` (kind carries it)."""

    def __init__(self, code: int) -> None:
        super().__init__("proc-exit", f"exit code {code}")
        self.code = code


class WasiEnvironment:
    """State backing one module instance's WASI imports."""

    MODULE = "wasi_snapshot_preview1"

    def __init__(self, argv: Optional[List[str]] = None, seed: int = 0) -> None:
        self.argv = list(argv or ["module"])
        self._rand_state = (seed * 2654435761 + 0x9E3779B9) & 0xFFFFFFFFFFFFFFFF or 1
        self._clock_ns = 0
        self._interp: Optional[Interpreter] = None
        self._out: Dict[int, bytearray] = {1: bytearray(), 2: bytearray()}

    # ------------------------------------------------------------------
    def bind(self, interp: Interpreter) -> "WasiEnvironment":
        self._interp = interp
        return self

    def stdout(self) -> str:
        return self._out[1].decode("utf-8", errors="replace")

    def stderr(self) -> str:
        return self._out[2].decode("utf-8", errors="replace")

    @property
    def _memory(self):
        if self._interp is None or self._interp.memory is None:
            raise Trap("wasi-unbound", "call WasiEnvironment.bind(interp) first")
        return self._interp.memory

    # ------------------------------------------------------------------
    # Syscalls
    # ------------------------------------------------------------------
    def args_sizes_get(self, argc_ptr: int, buf_size_ptr: int) -> int:
        memory = self._memory
        memory.store_u32(argc_ptr, len(self.argv))
        memory.store_u32(buf_size_ptr, sum(len(a) + 1 for a in self.argv))
        return ERRNO_SUCCESS

    def args_get(self, argv_ptr: int, buf_ptr: int) -> int:
        memory = self._memory
        cursor = buf_ptr
        for index, arg in enumerate(self.argv):
            memory.store_u32(argv_ptr + 4 * index, cursor)
            raw = arg.encode() + b"\x00"
            memory.store_bytes(cursor, raw)
            cursor += len(raw)
        return ERRNO_SUCCESS

    def clock_time_get(self, clock_id: int, _precision: int, time_ptr: int) -> int:
        if clock_id not in (0, 1):  # realtime, monotonic
            return ERRNO_INVAL
        self._clock_ns += _CLOCK_STEP_NS
        self._memory.store_u64(time_ptr, self._clock_ns)
        return ERRNO_SUCCESS

    def fd_write(self, fd: int, iovs_ptr: int, iovs_len: int, nwritten_ptr: int) -> int:
        if fd not in self._out:
            return ERRNO_BADF
        memory = self._memory
        written = 0
        for index in range(iovs_len):
            base = memory.load_u32(iovs_ptr + 8 * index)
            length = memory.load_u32(iovs_ptr + 8 * index + 4)
            self._out[fd] += memory.load_bytes(base, length)
            written += length
        memory.store_u32(nwritten_ptr, written)
        return ERRNO_SUCCESS

    def random_get(self, buf_ptr: int, buf_len: int) -> int:
        memory = self._memory
        out = bytearray()
        state = self._rand_state
        while len(out) < buf_len:
            state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
            state ^= state >> 7
            state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
            out += state.to_bytes(8, "little")
        self._rand_state = state
        memory.store_bytes(buf_ptr, bytes(out[:buf_len]))
        return ERRNO_SUCCESS

    def proc_exit(self, code: int) -> None:
        raise ProcExit(code)

    # ------------------------------------------------------------------
    def imports(self) -> Dict[Tuple[str, str], HostFunc]:
        entries = [
            ("args_sizes_get", (I32, I32), (I32,), self.args_sizes_get),
            ("args_get", (I32, I32), (I32,), self.args_get),
            ("clock_time_get", (I32, I64, I32), (I32,), self.clock_time_get),
            ("fd_write", (I32, I32, I32, I32), (I32,), self.fd_write),
            ("random_get", (I32, I32), (I32,), self.random_get),
            ("proc_exit", (I32,), (), self.proc_exit),
        ]
        return {
            (self.MODULE, name): HostFunc(params, results, fn, name=name)
            for name, params, results, fn in entries
        }
