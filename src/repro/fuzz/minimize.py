"""Delta-debugging minimization of campaign finds.

Classic ddmin over a list of items, specialised two ways:

* :func:`minimize_genome` — shrink a failing genome to the fewest
  genes (ddmin over the gene list), then shrink each surviving gene's
  constants and the call argument toward small values, re-checking the
  predicate after every candidate step.
* :func:`minimize_bytes` — ddmin over the raw encoded module for
  decoder/validator finds.

The predicate is "does this candidate still reproduce the failure",
supplied by the campaign as a closure over the failing check ids, and
every predicate call is budgeted so a pathological find cannot stall
the run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Sequence, TypeVar

from repro.fuzz.genome import Genome

T = TypeVar("T")


class _Budget:
    def __init__(self, limit: int) -> None:
        self.left = limit

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def ddmin(
    items: Sequence[T],
    predicate: Callable[[List[T]], bool],
    budget: int = 200,
) -> List[T]:
    """Smallest subsequence of ``items`` still satisfying ``predicate``.

    Assumes ``predicate(list(items))`` is true; never returns a list
    for which the predicate was observed false.
    """
    current = list(items)
    spend = _Budget(budget)
    granularity = 2
    while len(current) >= 2 and granularity <= len(current):
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and spend.spend() and predicate(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                # Re-scan from the top at the same chunk size.
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
        if spend.left <= 0:
            break
    return current


def _shrink_int(
    value: int, apply: Callable[[int], bool], spend: _Budget
) -> int:
    """Greedy shrink toward 0 (then 1) while the failure persists."""
    for candidate in (0, 1, value // 2, value // 10):
        if candidate == value:
            continue
        if spend.spend() and apply(candidate):
            value = candidate
    return value


def minimize_genome(
    genome: Genome,
    predicate: Callable[[Genome], bool],
    budget: int = 200,
) -> Genome:
    """Smallest genome (genes, then constants) still failing."""
    spend = _Budget(budget)

    genes = ddmin(
        list(genome.genes),
        lambda gs: predicate(Genome(tuple(gs), genome.arg)),
        budget=budget,
    )
    current = Genome(tuple(genes), genome.arg)

    # Shrink the call argument.
    def apply_arg(v: int) -> bool:
        nonlocal current
        candidate = Genome(current.genes, v)
        if predicate(candidate):
            current = candidate
            return True
        return False

    _shrink_int(current.arg, apply_arg, spend)

    # Shrink each gene's constants field by field.
    for index in range(len(current.genes)):
        for field in ("a", "b", "c", "d"):
            def apply_field(v: int, index=index, field=field) -> bool:
                nonlocal current
                candidate_gene = replace(current.genes[index], **{field: v})
                gs = list(current.genes)
                gs[index] = candidate_gene
                candidate = Genome(tuple(gs), current.arg)
                if predicate(candidate):
                    current = candidate
                    return True
                return False

            _shrink_int(
                getattr(current.genes[index], field), apply_field, spend
            )
        if spend.left <= 0:
            break
    return current


def minimize_bytes(
    data: bytes,
    predicate: Callable[[bytes], bool],
    budget: int = 200,
) -> bytes:
    """ddmin over raw module bytes for decode/validate-level finds."""
    reduced = ddmin(
        list(data), lambda bs: predicate(bytes(bs)), budget=budget
    )
    return bytes(reduced)
