"""``leaps-bench fuzz`` — the coverage-guided fuzzing campaign.

Usage::

    leaps-bench fuzz                          # 200 cases from seed 0
    leaps-bench fuzz --cases 500 --seed 1 --jobs 4
    leaps-bench fuzz --duration 60            # time-boxed (CI smoke)
    leaps-bench fuzz --json report.json       # machine-readable report
    leaps-bench fuzz --promote                # write minimized finds
                                              # into tests/fuzz_corpus/

Determinism: with ``--cases`` the JSON report is byte-identical across
runs and across ``--jobs`` values for a fixed (cases, seed) — case
generation, corpus scheduling and report folding all happen in the
parent in a fixed order.  ``--duration`` trades that for a wall-clock
budget and is what CI's smoke job uses.

Exit status 1 when the campaign confirms a divergence, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    from repro.core.cliopts import _jobs_arg

    parser = argparse.ArgumentParser(
        prog="leaps-bench fuzz",
        description="coverage-guided differential fuzzing campaign",
    )
    parser.add_argument(
        "--cases", type=int, default=200, metavar="N",
        help="campaign case budget (default: 200)",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; overrides --cases (CI smoke mode)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (default: 0)",
    )
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N",
        help="worker processes, or 'auto' (default: 1)",
    )
    parser.add_argument(
        "--corpus-dir", default="tests/fuzz_corpus", metavar="DIR",
        help="regression corpus directory (default: tests/fuzz_corpus)",
    )
    parser.add_argument(
        "--promote", action="store_true",
        help="write minimized finds into the regression corpus",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip delta-debugging of finds",
    )
    parser.add_argument(
        "--max-finds", type=int, default=10, metavar="N",
        help="finds to triage (default: 10)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable campaign report to PATH",
    )
    parser.add_argument(
        "--max-violations", type=int, default=20, metavar="N",
        help="violation lines to print (the JSON report holds all)",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.core.engine import resolve_jobs
    from repro.diffcheck.report import DiffReport
    from repro.fuzz.campaign import CampaignConfig, run_campaign
    from repro.runtime.predecode import interpreter_build_digest

    config = CampaignConfig(
        cases=args.cases,
        seed=args.seed,
        jobs=resolve_jobs(args.jobs),
        duration=args.duration,
        corpus_dir=Path(args.corpus_dir),
        promote=args.promote,
        minimize=not args.no_minimize,
        max_finds=args.max_finds,
    )
    budget = (
        f"{args.duration:g}s" if args.duration is not None
        else f"{args.cases} cases"
    )
    print(f"== fuzz campaign: {budget} from seed {args.seed}")
    result = run_campaign(config, progress=lambda line: print("  " + line))

    coverage = result["coverage"]
    per_map = " ".join(f"{k}={v}" for k, v in coverage["per_map"].items())
    print(
        f"\ncoverage: {coverage['edges']} edges ({per_map})\n"
        f"corpus: {result['corpus']['entries']} entries, "
        f"{result['corpus']['distinct_signatures']} signatures\n"
        f"finds: {len(result['finds'])}"
    )
    for find in result["finds"]:
        checks = ",".join(find["checks"])
        where = find.get("promoted") or find.get("id") or find["label"]
        print(f"  [{checks}] {where}")

    report = DiffReport()
    report.merge_json(result["report"])
    for violation in report.violations[: args.max_violations]:
        print("  " + violation.render())
    if len(report.violations) > args.max_violations:
        print(f"  ... and {len(report.violations) - args.max_violations} more")

    if args.json:
        payload = {
            "interpreter_build": interpreter_build_digest(),
            "dispatch": os.environ.get("REPRO_DISPATCH", "fused"),
            "tier": os.environ.get("REPRO_TIER", "opt"),
            **result,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"report written to {args.json}")

    return 1 if result["confirmed_divergence"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
