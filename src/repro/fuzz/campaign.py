"""The coverage-guided differential fuzzing campaign.

Orchestrates everything in this package into one deterministic run:

1. **Seeding** — the first ``initial`` cases are
   :func:`repro.fuzz.genome.genome_from_seed` of ``seed, seed+1, …``,
   so a campaign's starting line is a pure function of its seed.
2. **Scheduling** — cases execute in fixed batches; after each batch
   the parent folds results *in batch order* into the report and the
   :class:`~repro.fuzz.corpus.CorpusScheduler`.  New cases are derived
   by energy-weighted selection plus mutation (fresh genome / genome
   mutation / byte havoc, in a fixed probability split drawn from the
   campaign rng).  Because generation happens in the parent and
   folding is order-fixed, a ``--cases`` campaign's every decision —
   and therefore its JSON report — is byte-identical for any
   ``--jobs`` value.
3. **Oracles** — genome cases run the full PR 3 differential stack
   (:func:`repro.diffcheck.fuzz.check_module_case`) plus the tier/perf/
   page-span oracles (:mod:`repro.fuzz.oracles`) under coverage
   collection; byte-level mutants are decode/validate/canonical-encode
   checks only (never executed).  Any non-``WasmError`` escape is
   itself a find (``fuzz.harness-error``).
4. **Triage** — failing cases are delta-debugged
   (:mod:`repro.fuzz.minimize`) against the specific check ids they
   violated and, when ``promote`` is on, written into the regression
   corpus (:mod:`repro.fuzz.promote`).

Worker processes only ever execute *fully serialized* cases (JSON
dicts), so runs distribute over the engine's fork pool without
entangling scheduling state; monkeypatched single-process runs
(``jobs=1``) execute everything in-process, which is what lets the
test suite seed a regression into the runtime and watch the campaign
catch it.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.engine import _pool_context
from repro.diffcheck.fuzz import check_module_case
from repro.diffcheck.report import DiffReport
from repro.fuzz.corpus import CorpusScheduler
from repro.fuzz.genome import (
    Genome,
    build_genome_module,
    genome_from_json,
    genome_from_seed,
    genome_to_json,
    random_genome,
)
from repro.fuzz.minimize import minimize_bytes, minimize_genome
from repro.fuzz.mutators import mutate_bytes, mutate_genome, mutate_memarg
from repro.fuzz.oracles import run_oracles
from repro.fuzz.promote import Unpromotable, find_id, promote_find
from repro.wasm import decode_module, encode_module, validate_module
from repro.wasm.coverage import COVERAGE, collecting, edges_signature
from repro.wasm.errors import WasmError

CHECK_HARNESS = "fuzz.harness-error"
CHECK_BYTES = "fuzz.bytes-canonical-encode"

#: Mutation mix: fresh random genome / genome mutation / byte havoc.
_P_FRESH = 0.3
_P_GENOME_MUT = 0.5  # of the remainder


@dataclass
class CampaignConfig:
    cases: int = 200
    seed: int = 0
    jobs: int = 1
    duration: Optional[float] = None  # seconds; overrides ``cases``
    batch: int = 8  # fixed fan-out unit, never derived from jobs
    initial: int = 16
    corpus_dir: Path = Path("tests/fuzz_corpus")
    promote: bool = False
    minimize: bool = True
    max_finds: int = 10
    minimize_budget: int = 150


# ----------------------------------------------------------------------
# Worker-side case execution (case dicts are plain JSON for pickling)
# ----------------------------------------------------------------------
def _check_bytes_case(data: bytes, report: DiffReport, subject: dict) -> None:
    """Decode/validate/canonical-encode oracle for byte mutants.

    Mutated binaries are never executed; the contract under test is
    that the front end either accepts them or rejects them with a
    ``WasmError``, and that accepted ones reach an encoding fixed
    point (canonical form re-encodes to itself).
    """
    try:
        module = decode_module(data)
    except WasmError:
        return  # clean rejection is a pass (recorded via coverage)
    try:
        validate_module(module)
    except WasmError:
        return
    canonical = encode_module(module)
    recoded = encode_module(decode_module(canonical))
    report.check(
        CHECK_BYTES,
        canonical == recoded,
        subject=subject,
        detail="canonical encoding is not a fixed point",
        expected=len(canonical),
        actual=len(recoded),
    )


def _run_case_json(case: dict) -> dict:
    """Execute one serialized case; returns report + coverage payload."""
    report = DiffReport()
    subject = {"case": case["label"]}
    encoded = b""
    try:
        with collecting():
            if case["kind"] == "genome":
                genome = genome_from_json(case["genome"])
                module = build_genome_module(genome)
                encoded = encode_module(module)
                subject["arg"] = genome.arg
                check_module_case(module, genome.arg, report, subject=subject)
                run_oracles(module, genome.arg, report, subject, genome=genome)
            else:
                encoded = bytes.fromhex(case["data"])
                _check_bytes_case(encoded, report, subject)
            edges = sorted(COVERAGE.edge_keys())
            signature = COVERAGE.signature()
    except Exception as exc:  # noqa: BLE001 — escapes are finds
        report.check(
            CHECK_HARNESS, False, subject=subject,
            detail="uncaught exception escaped the substrate",
            actual=repr(exc),
        )
        edges, signature = [], edges_signature(frozenset())
    return {
        "label": case["label"],
        "report": report.to_json(),
        "edges": [list(edge) for edge in edges],
        "signature": signature,
        "encoded": encoded.hex(),
        "failed_checks": sorted({v.check for v in report.violations}),
    }


# ----------------------------------------------------------------------
# Case generation (parent-side, deterministic)
# ----------------------------------------------------------------------
def _next_case(
    rng: random.Random, scheduler: CorpusScheduler, counter: int
) -> dict:
    if not scheduler.entries or rng.random() < _P_FRESH:
        genome = random_genome(rng)
        return {
            "kind": "genome",
            "label": f"fresh-{counter}",
            "genome": genome_to_json(genome),
        }
    entry = scheduler.select(rng)
    parent = entry.case
    if isinstance(parent, Genome) and rng.random() < _P_GENOME_MUT / (1 - _P_FRESH):
        mutant = mutate_genome(parent, rng)
        return {
            "kind": "genome",
            "label": f"mut-{counter}",
            "genome": genome_to_json(mutant),
        }
    data = entry.encoded if entry.encoded else (
        encode_module(build_genome_module(parent))
        if isinstance(parent, Genome) else b""
    )
    if not data:
        genome = random_genome(rng)
        return {
            "kind": "genome",
            "label": f"fresh-{counter}",
            "genome": genome_to_json(genome),
        }
    mutator = mutate_memarg if rng.random() < 0.5 else mutate_bytes
    return {
        "kind": "bytes",
        "label": f"havoc-{counter}",
        "data": mutator(data, rng).hex(),
    }


def _case_payload(case: dict):
    if case["kind"] == "genome":
        return genome_from_json(case["genome"])
    return bytes.fromhex(case["data"])


# ----------------------------------------------------------------------
# Triage
# ----------------------------------------------------------------------
def _genome_fails(genome: Genome, check_ids: frozenset) -> bool:
    report = DiffReport()
    try:
        module = build_genome_module(genome)
        subject = {"case": "minimize"}
        check_module_case(module, genome.arg, report, subject=subject)
        run_oracles(module, genome.arg, report, subject, genome=genome)
    except Exception:
        return CHECK_HARNESS in check_ids
    return any(v.check in check_ids for v in report.violations)


def _bytes_fail(data: bytes, check_ids: frozenset) -> bool:
    report = DiffReport()
    try:
        _check_bytes_case(data, report, {"case": "minimize"})
    except Exception:
        return CHECK_HARNESS in check_ids
    return any(v.check in check_ids for v in report.violations)


def _triage(
    finds: List[dict], config: CampaignConfig
) -> List[dict]:
    """Minimize and (optionally) promote each find, in find order."""
    triaged = []
    for find in finds[: config.max_finds]:
        record = {
            "label": find["case"]["label"],
            "kind": find["case"]["kind"],
            "checks": find["failed_checks"],
        }
        check_ids = frozenset(find["failed_checks"])
        if find["case"]["kind"] == "genome":
            genome = genome_from_json(find["case"]["genome"])
            if config.minimize and _genome_fails(genome, check_ids):
                genome = minimize_genome(
                    genome,
                    lambda g: _genome_fails(g, check_ids),
                    budget=config.minimize_budget,
                )
            record["genome"] = genome_to_json(genome)
            record["arg"] = genome.arg
            if config.promote:
                try:
                    module = build_genome_module(genome)
                    entry = promote_find(
                        module, genome.arg, sorted(check_ids),
                        config.corpus_dir, genome=genome,
                        note=f"campaign seed={config.seed}",
                    )
                    record["promoted"] = entry.get("file", entry["id"])
                except (Unpromotable, WasmError) as exc:
                    record["promoted"] = None
                    record["promote_error"] = repr(exc)
        else:
            data = bytes.fromhex(find["case"]["data"])
            if config.minimize and _bytes_fail(data, check_ids):
                data = minimize_bytes(
                    data,
                    lambda b: _bytes_fail(b, check_ids),
                    budget=config.minimize_budget,
                )
            record["bytes"] = data.hex()
            record["id"] = find_id(data, 0)
        triaged.append(record)
    return triaged


# ----------------------------------------------------------------------
# The campaign loop
# ----------------------------------------------------------------------
def run_campaign(config: CampaignConfig, progress=None) -> dict:
    """Run one campaign; returns the deterministic JSON-able result.

    In ``--cases`` mode the returned dict contains no wall-clock or
    worker-count data, so equal (cases, seed) runs are byte-identical
    regardless of ``jobs``.
    """
    rng = random.Random(config.seed)
    scheduler = CorpusScheduler()
    report = DiffReport()
    finds: List[dict] = []
    executed = 0
    counter = 0
    deadline = (
        time.monotonic() + config.duration
        if config.duration is not None else None
    )

    def make_batch() -> List[dict]:
        nonlocal counter
        batch = []
        while len(batch) < config.batch:
            if deadline is None and counter >= config.cases:
                break
            if counter < config.initial:
                genome = genome_from_seed(config.seed + counter)
                case = {
                    "kind": "genome",
                    "label": f"seed-{config.seed + counter}",
                    "genome": genome_to_json(genome),
                }
            else:
                case = _next_case(rng, scheduler, counter)
            batch.append(case)
            counter += 1
        return batch

    def fold(case: dict, result: dict) -> None:
        nonlocal executed
        executed += 1
        report.merge_json(result["report"])
        edges = frozenset(tuple(edge) for edge in result["edges"])
        scheduler.consider(
            _case_payload(case),
            edges,
            result["signature"],
            encoded=bytes.fromhex(result["encoded"]),
            label=case["label"],
        )
        if result["failed_checks"]:
            finds.append({"case": case, "failed_checks": result["failed_checks"]})

    pool = None
    try:
        if config.jobs > 1:
            pool = ProcessPoolExecutor(
                max_workers=config.jobs, mp_context=_pool_context()
            )
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                break
            batch = make_batch()
            if not batch:
                break
            if pool is not None:
                results = list(pool.map(_run_case_json, batch, chunksize=1))
            else:
                results = [_run_case_json(case) for case in batch]
            for case, result in zip(batch, results):
                fold(case, result)
            if progress is not None:
                stats = scheduler.stats()
                progress(
                    f"cases {executed}, edges {stats['edges']}, "
                    f"corpus {stats['entries']}, finds {len(finds)}"
                )
    finally:
        if pool is not None:
            pool.shutdown()

    triaged = _triage(finds, config)

    per_map: Dict[str, int] = {}
    for map_name, _, _ in scheduler.edges:
        per_map[map_name] = per_map.get(map_name, 0) + 1
    result = {
        "campaign": {
            "cases": executed,
            "seed": config.seed,
            "batch": config.batch,
            "initial": config.initial,
            "mode": "duration" if config.duration is not None else "cases",
        },
        "coverage": {
            "edges": scheduler.edge_count,
            "per_map": dict(sorted(per_map.items())),
            "signature": edges_signature(scheduler.edges),
        },
        "corpus": scheduler.stats(),
        "finds": triaged,
        "confirmed_divergence": not report.ok,
        "report": report.to_json(),
    }
    if config.duration is not None:
        result["campaign"]["duration_budget"] = config.duration
    return result
