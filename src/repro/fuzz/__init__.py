"""Coverage-guided differential fuzzing campaign.

Builds the campaign the paper's methodology calls for on top of the
PR 3 seeded differential harness (:mod:`repro.diffcheck.fuzz`):

* :mod:`genome` — generated programs as mutable plain data (total
  emission: every mutant builds into a valid module);
* :mod:`mutators` — DSL-level structural mutation plus byte-level
  havoc and memarg boundary nudges over encoded modules;
* :mod:`corpus` — coverage-signature dedup and novel-edge-weighted
  scheduling over :mod:`repro.wasm.coverage`'s edge maps;
* :mod:`oracles` — tier agreement (legacy/fused/opt), the inline
  bounds-check cost-ordering invariant re-derived from interpreted
  profiles, and interior-page span for ranged accesses;
* :mod:`minimize` — delta-debugging of finds (gene ddmin + constant
  shrinking, raw-byte ddmin);
* :mod:`promote` — minimized finds written into ``tests/fuzz_corpus/``
  as replayable flat WAT plus ``seeds.json`` campaign entries;
* :mod:`campaign` — the deterministic batch scheduler tying it all
  together (byte-identical reports for any ``--jobs``);
* :mod:`cli` — ``leaps-bench fuzz``.
"""

from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.genome import Genome, Gene, build_genome_module, genome_from_seed

__all__ = [
    "CampaignConfig",
    "run_campaign",
    "Genome",
    "Gene",
    "build_genome_module",
    "genome_from_seed",
]
