"""Campaign-specific differential oracles.

These extend :func:`repro.diffcheck.fuzz.check_module_case` (encode /
validate / round-trip / strategy agreement) with the three comparisons
the ISSUE's campaign adds on top:

* **Tier agreement** — the same (module, arg) must behave identically
  under the ``legacy``, ``fused`` and ``opt`` execution tiers: same
  value or trap, same load/store counts, same touched pages, and the
  same per-pc instruction profile.  ``REPRO_TIER_THRESHOLD`` is forced
  to 0 for the comparison so the ``opt`` tier actually exercises its
  tier-2 path on the first call rather than hiding behind the warm-up
  threshold.
* **Performance differential** — the diffcheck invariant catalogue's
  inline-cost ordering (:data:`repro.diffcheck.invariants._COMPUTE_PAIRS`,
  clamp ≥ trap ≥ {mprotect, uffd} ≥ none) re-derived from *interpreted*
  profiles: modelled cost is total dynamic instructions plus the
  strategy's inline bounds-check ops per memory access.  A generated
  program whose profile violates the ordering is a perf-model bug.
* **Page span** — ranged accesses (the genome's ``fill`` genes) must
  touch *every* 4 KiB page they cover, not just the first and last:
  the regression class PR 3 fixed in ``LinearMemory._touch``.

All checks fold into the standard :class:`DiffReport` so campaign
reports merge associatively across workers exactly like diffcheck's.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.diffcheck.invariants import _COMPUTE_PAIRS
from repro.diffcheck.report import DiffReport
from repro.fuzz.genome import Genome, fill_pages
from repro.runtime.interpreter import Interpreter
from repro.runtime.strategies import STRATEGY_ORDER
from repro.runtime.tiering import TIERS
from repro.wasm.errors import Trap

CHECK_TIER = "fuzz.tier-agreement"
CHECK_TIER_PROFILE = "fuzz.tier-profile-agreement"
CHECK_PERF = "fuzz.perf-differential"
CHECK_PAGES = "fuzz.page-span"

#: Inline bounds-check ops the cost model charges per memory access
#: (mirrors the paper's explicit-check accounting: clamp pays a
#: compare+select on every access, trap a compare+branch, mte one tag
#: check, wasm64 an explicit compare+branch with no guard region to
#: lean on, the fault-based strategies and none pay nothing inline).
_INLINE_CHECK_OPS = {
    "clamp": 2, "trap": 1, "mprotect": 0, "uffd": 0, "none": 0,
    "mte": 1, "wasm64": 1,
}


@contextmanager
def _forced_tier_up():
    """Run with REPRO_TIER_THRESHOLD=0 so 'opt' tiers up immediately."""
    prior = os.environ.get("REPRO_TIER_THRESHOLD")
    os.environ["REPRO_TIER_THRESHOLD"] = "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_TIER_THRESHOLD"]
        else:
            os.environ["REPRO_TIER_THRESHOLD"] = prior


def _tier_run(module, arg: int, tier: str):
    """(outcome tuple, {func: per-pc counts}) under one tier."""
    interp = Interpreter(
        module, strategy="trap", validate=False,
        collect_profile=True, track_pages=True, tier=tier,
    )
    try:
        value = interp.invoke("run", arg)
    except Trap as exc:
        return ("trap", exc.kind), _counts_of(interp)
    memory = interp.memory
    outcome = (
        "value", value, memory.load_count, memory.store_count,
        tuple(sorted(memory.touched_pages)),
    )
    return outcome, _counts_of(interp)


def _counts_of(interp) -> Dict[int, Tuple[int, ...]]:
    profile = interp.take_profile()
    return {fi: tuple(c) for fi, c in profile.instr_counts.items()}


def check_tier_agreement(
    module, arg: int, report: DiffReport, subject: dict
) -> None:
    with _forced_tier_up():
        baseline_tier = "fused"
        baseline, base_counts = _tier_run(module, arg, baseline_tier)
        for tier in TIERS:
            if tier == baseline_tier:
                continue
            outcome, counts = _tier_run(module, arg, tier)
            report.check(
                CHECK_TIER,
                outcome == baseline,
                subject=dict(subject, tier=tier),
                detail=f"tier '{tier}' diverges from '{baseline_tier}'",
                expected=baseline,
                actual=outcome,
            )
            report.check(
                CHECK_TIER_PROFILE,
                counts == base_counts,
                subject=dict(subject, tier=tier),
                detail="per-pc instruction profile differs across tiers",
                expected=_profile_digest(base_counts),
                actual=_profile_digest(counts),
            )


def _profile_digest(counts: Dict[int, Tuple[int, ...]]) -> dict:
    """Small JSON-able summary for violation payloads."""
    return {
        str(fi): {"total": sum(c), "nonzero": sum(1 for x in c if x)}
        for fi, c in sorted(counts.items())
    }


def check_perf_differential(
    module, arg: int, report: DiffReport, subject: dict
) -> None:
    costs: Dict[str, int] = {}
    for strategy in STRATEGY_ORDER:
        interp = Interpreter(
            module, strategy=strategy, validate=False,
            collect_profile=True, track_pages=False,
        )
        try:
            interp.invoke("run", arg)
        except Trap:
            # Trapping runs execute different suffixes per strategy;
            # the ordering invariant only speaks to complete runs.
            return
        profile = interp.take_profile()
        accesses = interp.memory.load_count + interp.memory.store_count
        costs[strategy] = (
            sum(profile.op_totals.values())
            + _INLINE_CHECK_OPS[strategy] * accesses
        )
    for costlier, cheaper in _COMPUTE_PAIRS:
        report.check(
            CHECK_PERF,
            costs[costlier] >= costs[cheaper],
            subject=dict(subject, pair=f"{costlier}>={cheaper}"),
            detail="modelled inline-check cost ordering violated",
            expected=f"{costlier} >= {cheaper}",
            actual={costlier: costs[costlier], cheaper: costs[cheaper]},
        )


def check_page_span(
    module, arg: int, genome: Genome, report: DiffReport, subject: dict
) -> None:
    expected = fill_pages(genome)
    if not expected:
        return
    interp = Interpreter(
        module, strategy="trap", validate=False,
        collect_profile=False, track_pages=True,
    )
    try:
        interp.invoke("run", arg)
    except Trap:
        # An earlier gene trapped before the fill ran; span unprovable.
        return
    touched = frozenset(interp.memory.touched_pages)
    report.check(
        CHECK_PAGES,
        expected <= touched,
        subject=subject,
        detail="ranged access skipped interior pages",
        expected=sorted(expected),
        actual=sorted(touched),
    )


def run_oracles(
    module,
    arg: int,
    report: DiffReport,
    subject: dict,
    genome: Optional[Genome] = None,
) -> None:
    """All campaign oracles for one executable (module, arg) pair."""
    check_tier_agreement(module, arg, report, subject)
    check_perf_differential(module, arg, report, subject)
    if genome is not None:
        check_page_span(module, arg, genome, report, subject)
