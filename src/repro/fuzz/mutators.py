"""Mutation operators for the coverage-guided campaign.

Two levels, matching the two kinds of corpus entries:

* **DSL level** (:func:`mutate_genome`) — structural edits over the
  gene list: splice genes between positions, drop/duplicate genes,
  flip a gene's kind, perturb its constants, or perturb the call
  argument.  Because :func:`repro.fuzz.genome.build_genome_module`
  normalises every field, any mutant still builds into a valid,
  executable module, so these mutants run the full differential
  oracle stack.
* **Byte level** (:func:`mutate_bytes`, :func:`mutate_memarg`) —
  havoc-style edits over the encoded wasm binary: bit flips, byte
  deltas, LEB128 continuation-bit flips, truncation, insertion, and
  targeted load/store ``(align, offset)`` boundary nudges via a
  decode→perturb→re-encode pass.  Byte mutants are *not* executed —
  they exist to push the decoder and validator into their rejection
  edges — so the only contract is "decoder accepts or raises
  ``WasmError``, never anything else".

All mutators draw exclusively from the :class:`random.Random` they are
handed; given the same rng state and input they produce the same
mutant, which is what makes whole campaigns replayable from one seed.
"""

from __future__ import annotations

import random
from typing import List

from repro.fuzz.genome import (
    GENE_KINDS,
    Gene,
    Genome,
    random_gene,
)
from repro.wasm import decode_module, encode_module
from repro.wasm.errors import WasmError
from repro.wasm.instructions import Instr
from repro.wasm.opcodes import info as op_info

#: Values that sit on interesting integer boundaries for constants,
#: loop bounds and memargs alike.
_BOUNDARY = (
    0, 1, 2, 15, 16, 17, 127, 128, 255, 256, 4095, 4096, 4097,
    65535, 65536, 65537, 2**31 - 1, 2**31, 2**32 - 1,
)


# ----------------------------------------------------------------------
# DSL-level mutation
# ----------------------------------------------------------------------
def _perturb_int(value: int, rng: random.Random) -> int:
    roll = rng.random()
    if roll < 0.4:
        return value + rng.choice((-3, -2, -1, 1, 2, 3))
    if roll < 0.7:
        return rng.choice(_BOUNDARY)
    if roll < 0.85:
        return value * rng.choice((-1, 2, 3))
    return rng.randint(-(2**16), 2**16)


def mutate_genome(genome: Genome, rng: random.Random) -> Genome:
    """One structural mutation; the result always has >= 1 gene."""
    genes: List[Gene] = list(genome.genes)
    arg = genome.arg
    op = rng.choice(
        ("splice", "drop", "dup", "kind", "param", "arg", "append")
    )
    if op == "splice" and len(genes) >= 2:
        i, j = rng.sample(range(len(genes)), 2)
        genes[i], genes[j] = genes[j], genes[i]
    elif op == "drop" and len(genes) >= 2:
        genes.pop(rng.randrange(len(genes)))
    elif op == "dup":
        i = rng.randrange(len(genes))
        genes.insert(rng.randint(0, len(genes)), genes[i])
    elif op == "kind":
        i = rng.randrange(len(genes))
        genes[i] = Gene(
            rng.choice(GENE_KINDS),
            genes[i].a, genes[i].b, genes[i].c, genes[i].d,
        )
    elif op == "arg":
        arg = _perturb_int(arg, rng) & 0x7FFFFFFF
    elif op == "append":
        genes.insert(rng.randint(0, len(genes)), random_gene(rng))
    else:  # param (also the fallback when drop/splice lack genes)
        i = rng.randrange(len(genes))
        g = genes[i]
        field = rng.choice("abcd")
        genes[i] = Gene(
            g.kind,
            _perturb_int(g.a, rng) if field == "a" else g.a,
            _perturb_int(g.b, rng) if field == "b" else g.b,
            _perturb_int(g.c, rng) if field == "c" else g.c,
            _perturb_int(g.d, rng) if field == "d" else g.d,
        )
    return Genome(tuple(genes), arg)


# ----------------------------------------------------------------------
# Byte-level mutation
# ----------------------------------------------------------------------
def mutate_bytes(data: bytes, rng: random.Random) -> bytes:
    """1–3 stacked havoc edits over an encoded module."""
    buf = bytearray(data)
    for _ in range(rng.randint(1, 3)):
        if not buf:
            break
        pos = rng.randrange(len(buf))
        roll = rng.random()
        if roll < 0.25:  # single-bit flip
            buf[pos] ^= 1 << rng.randrange(8)
        elif roll < 0.45:  # LEB128 continuation-bit flip
            buf[pos] ^= 0x80
        elif roll < 0.6:  # small delta
            buf[pos] = (buf[pos] + rng.choice((-2, -1, 1, 2))) & 0xFF
        elif roll < 0.75:  # boundary overwrite
            buf[pos] = rng.choice((0x00, 0x01, 0x7F, 0x80, 0xFF))
        elif roll < 0.9:  # insert a byte
            buf.insert(pos, rng.randrange(256))
        else:  # truncate the tail
            del buf[pos:]
    return bytes(buf)


def mutate_memarg(data: bytes, rng: random.Random) -> bytes:
    """Perturb one load/store ``(align, offset)`` pair and re-encode.

    Falls back to :func:`mutate_bytes` when the input no longer decodes
    or contains no memory accesses, so callers can use it
    unconditionally.
    """
    try:
        module = decode_module(data)
    except WasmError:
        return mutate_bytes(data, rng)
    sites = [
        (fi, pc)
        for fi, func in enumerate(module.funcs)
        for pc, ins in enumerate(func.body)
        if op_info(ins.op).imm == "memarg"
    ]
    if not sites:
        return mutate_bytes(data, rng)
    fi, pc = rng.choice(sites)
    ins = module.funcs[fi].body[pc]
    align, offset = ins.args
    if rng.random() < 0.5:
        # Alignment hints are log2; anything > the access width is
        # invalid, which is precisely a validator edge worth hitting.
        align = rng.choice((0, 1, 2, 3, 4, 16, 31))
    else:
        offset = rng.choice(_BOUNDARY)
    body = list(module.funcs[fi].body)
    body[pc] = Instr(ins.op, (align, offset))
    module.funcs[fi].body = body
    try:
        return encode_module(module)
    except WasmError:
        return mutate_bytes(data, rng)
