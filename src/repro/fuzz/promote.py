"""Promotion of minimized finds into the regression corpus.

A confirmed, minimized find graduates from the campaign into
``tests/fuzz_corpus/`` as (a) a standalone flat-WAT file that
:func:`repro.wasm.wat_parser.parse_wat` reads back, and (b) an entry
in the ``"campaign"`` list of ``seeds.json`` recording the invocation
argument, the violated check ids and (for DSL-level finds) the genome,
so ``tests/test_fuzz_corpus.py`` replays it forever after.

The WAT emitter here targets the *parser's* grammar exactly — flat
instructions, ``offset=``/``align=`` memargs (align in bytes), inline
``(export ...)`` on the function, ``\\xx``-escaped data strings — and
every promotion is verified by round-tripping the text through
``parse_wat`` + ``validate_module`` and comparing interpreter
behaviour against the original module before anything is written.
Modules using features outside that grammar raise
:class:`Unpromotable`; the campaign then records a genome-only entry.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional

from repro.diffcheck.fuzz import outcome_of
from repro.fuzz.genome import Genome, genome_to_json
from repro.wasm import encode_module, validate_module
from repro.wasm.errors import WasmError
from repro.wasm.instructions import Instr
from repro.wasm.module import Module
from repro.wasm.wat_parser import parse_wat


class Unpromotable(Exception):
    """The module uses a construct the flat-WAT grammar can't express."""


def find_id(encoded: bytes, arg: int) -> str:
    """Stable 12-hex identifier of one (module bytes, arg) find."""
    digest = hashlib.sha256(encoded + b"\x00" + str(arg).encode()).hexdigest()
    return digest[:12]


# ----------------------------------------------------------------------
# Flat-WAT emission
# ----------------------------------------------------------------------
def _render_instr(ins: Instr) -> str:
    info = ins.info
    if info.imm == "":
        return ins.op
    if info.imm == "block":
        result = ins.args[0]
        return ins.op if result is None else f"{ins.op} (result {result.value})"
    if info.imm == "u32":
        return f"{ins.op} {ins.args[0]}"
    if info.imm == "memarg":
        align_log2, offset = ins.args
        return f"{ins.op} offset={offset} align={1 << align_log2}"
    if info.imm in ("i32", "i64"):
        return f"{ins.op} {ins.args[0]}"
    if info.imm in ("f32", "f64"):
        return f"{ins.op} {ins.args[0]!r}"
    if info.imm == "br_table":
        labels, default = ins.args
        return "br_table " + " ".join(str(l) for l in (*labels, default))
    if info.imm == "call_indirect":
        return f"call_indirect (type {ins.args[0]})"
    if info.imm in ("memidx", "memcopy", "memfill"):
        return ins.op
    raise Unpromotable(f"instruction {ins.op} has no flat-WAT form")


def _render_data(raw: bytes) -> str:
    out = []
    for byte in raw:
        ch = chr(byte)
        if ch.isalnum() or ch in " _.,:;-+*/#":
            out.append(ch)
        else:
            out.append(f"\\{byte:02x}")
    return '"' + "".join(out) + '"'


def module_to_flat_wat(module: Module) -> str:
    """Render ``module`` as text ``parse_wat`` reads back verbatim."""
    if module.imports:
        raise Unpromotable("imports are outside the flat-WAT grammar")
    lines: List[str] = ["(module"]
    for memory in module.memories:
        limits = memory.limits
        maximum = "" if limits.maximum is None else f" {limits.maximum}"
        lines.append(f"  (memory {limits.minimum}{maximum})")
    for table in module.tables:
        limits = table.limits
        maximum = "" if limits.maximum is None else f" {limits.maximum}"
        lines.append(f"  (table {limits.minimum}{maximum} funcref)")
    for glob in module.globals:
        init = glob.init[0]
        valtype = glob.type.valtype.value
        type_text = f"(mut {valtype})" if glob.type.mutable else valtype
        lines.append(f"  (global {type_text} ({init.op} {init.args[0]!r}))")
    func_exports = {}
    for export in module.exports:
        if export.kind == "func":
            func_exports.setdefault(export.index, []).append(export.name)
        elif export.kind == "memory":
            lines.append(f'  (export "{export.name}" (memory {export.index}))')
        else:
            raise Unpromotable(f"{export.kind} exports are not expressible")
    for index, func in enumerate(module.funcs):
        func_type = module.types[func.type_index]
        header = [f"(func $f{index}"]
        for name in func_exports.get(index, ()):
            header.append(f'(export "{name}")')
        if func_type.params:
            header.append(
                "(param " + " ".join(t.value for t in func_type.params) + ")"
            )
        if func_type.results:
            header.append(
                "(result " + " ".join(t.value for t in func_type.results) + ")"
            )
        if func.locals:
            header.append(
                "(local " + " ".join(t.value for t in func.locals) + ")"
            )
        lines.append("  " + " ".join(header))
        for ins in func.body:
            lines.append("    " + _render_instr(ins))
        lines.append("  )")
    for element in module.elements:
        offset = element.offset[0]
        refs = " ".join(str(fi) for fi in element.func_indices)
        lines.append(f"  (elem ({offset.op} {offset.args[0]}) {refs})")
    for segment in module.data:
        offset = segment.offset[0]
        lines.append(
            f"  (data ({offset.op} {offset.args[0]}) {_render_data(segment.data)})"
        )
    if module.start is not None:
        lines.append(f"  (start {module.start})")
    lines.append(")")
    return "\n".join(lines) + "\n"


def _verify_roundtrip(module: Module, wat_text: str, arg: int) -> None:
    """Promotion safety net: the text must rebuild the same behaviour."""
    try:
        reparsed = parse_wat(wat_text)
        validate_module(reparsed)
    except WasmError as exc:
        raise Unpromotable(f"emitted WAT does not round-trip: {exc!r}") from exc
    original = outcome_of(module, arg, "trap")
    replayed = outcome_of(reparsed, arg, "trap")
    if original != replayed:
        raise Unpromotable(
            f"WAT round trip changed behaviour: {original} != {replayed}"
        )


# ----------------------------------------------------------------------
# Corpus writing
# ----------------------------------------------------------------------
def promote_find(
    module: Module,
    arg: int,
    checks: List[str],
    corpus_dir: Path,
    genome: Optional[Genome] = None,
    note: str = "",
) -> dict:
    """Write one minimized find into ``corpus_dir``; returns its entry.

    Idempotent per find id: re-promoting an already-recorded find
    returns the existing entry without touching the corpus again.
    """
    corpus_dir = Path(corpus_dir)
    encoded = encode_module(module)
    identifier = find_id(encoded, arg)
    seeds_path = corpus_dir / "seeds.json"
    catalogue = (
        json.loads(seeds_path.read_text()) if seeds_path.exists() else {}
    )
    campaign = catalogue.setdefault("campaign", [])
    for existing in campaign:
        if existing.get("id") == identifier:
            return existing

    entry = {
        "id": identifier,
        "arg": arg,
        "checks": sorted(set(checks)),
        "note": note,
    }
    if genome is not None:
        entry["genome"] = genome_to_json(genome)
    try:
        wat_text = module_to_flat_wat(module)
        _verify_roundtrip(module, wat_text, arg)
    except Unpromotable:
        if genome is None:
            raise
        # Genome-only entry: replay rebuilds the module from the genome.
    else:
        filename = f"campaign_{identifier}.wat"
        corpus_dir.mkdir(parents=True, exist_ok=True)
        (corpus_dir / filename).write_text(wat_text)
        entry["file"] = filename

    campaign.append(entry)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    seeds_path.write_text(json.dumps(catalogue, indent=2) + "\n")
    return entry
