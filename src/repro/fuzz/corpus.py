"""Coverage-driven corpus scheduling.

The scheduler keeps one entry per distinct coverage *signature* (a
hash over the set of edges a case exercised — see
:func:`repro.wasm.coverage.edges_signature`) and assigns each entry an
energy of ``1 + number of edges that were globally novel when the
entry arrived``.  Selection for mutation is energy-weighted, so cases
that opened new decoder/validator/dispatch territory get mutated more
often, which is the whole "coverage-guided" part of the campaign.

Everything here is plain deterministic bookkeeping: no clocks, no
global state, and selection draws only from the rng the caller hands
in, so a campaign replays exactly from its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

Edge = Tuple[str, str, str]  # (map name, prev, current)


@dataclass
class CorpusEntry:
    """One scheduled case plus its scheduling weight."""

    case: object  # campaign-defined payload (genome or raw bytes)
    signature: str
    energy: int
    encoded: bytes = b""
    label: str = ""


@dataclass
class CorpusScheduler:
    entries: List[CorpusEntry] = field(default_factory=list)
    _signatures: Set[str] = field(default_factory=set)
    _edges: Set[Edge] = field(default_factory=set)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> FrozenSet[Edge]:
        return frozenset(self._edges)

    def consider(
        self,
        case: object,
        edges: FrozenSet[Edge],
        signature: str,
        encoded: bytes = b"",
        label: str = "",
    ) -> Optional[CorpusEntry]:
        """Admit ``case`` if it brings novel edges or a new signature.

        Returns the new entry, or ``None`` when the case is a coverage
        duplicate (no new edges *and* an already-seen signature).
        """
        novel = edges - self._edges
        if not novel and signature in self._signatures:
            return None
        self._edges |= novel
        self._signatures.add(signature)
        entry = CorpusEntry(
            case=case,
            signature=signature,
            energy=1 + len(novel),
            encoded=encoded,
            label=label,
        )
        self.entries.append(entry)
        return entry

    def select(self, rng: random.Random) -> CorpusEntry:
        """Energy-weighted pick; caller must ensure the corpus is
        non-empty."""
        return rng.choices(
            self.entries, weights=[e.energy for e in self.entries], k=1
        )[0]

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self.entries),
            "distinct_signatures": len(self._signatures),
            "edges": len(self._edges),
            "total_energy": sum(e.energy for e in self.entries),
        }
