"""Genome representation of generated fuzz programs.

The campaign mutates *programs*, not just bytes, so generated cases
live as plain data first: a :class:`Genome` is a tuple of
:class:`Gene` statements plus the invocation argument.  The gene kinds
mirror :func:`repro.diffcheck.fuzz.build_program`'s statement
repertoire (loops, branches, array traffic, trap-prone arithmetic,
out-of-bounds accesses) and add a ``fill`` kind exercising the bulk
0xFC ``memory.fill`` path — a multi-page ranged access through one
bounds check that the PR 3 generator never emits, and exactly the
shape whose interior-page touch accounting has regressed before.

Genomes are deliberately total: :func:`build_genome_module` normalises
every integer field into its legal range at emission time, so *any*
gene tuple — including whatever the mutators produce — builds into an
encodable, validator-clean module.  That property is load-bearing for
the mutator-robustness guarantee (tests/test_diff_properties.py) and
keeps delta-debugging free to splice genes without bookkeeping.

Plain-data design: frozen dataclasses, JSON round-trip via
:func:`genome_to_json` / :func:`genome_from_json`, picklable for pool
fan-out, and hashable for corpus dedup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.wasm.dsl import DslModule, Select

#: Statement kinds; the first eight mirror build_program's repertoire.
GENE_KINDS = (
    "loop", "if", "nested", "while", "store", "oob", "div", "trunc", "fill",
)

_ARRAY_LEN = 16

#: memory.fill placement, relative to the DSL data base.  Destinations
#: land in [0, FILL_SPAN) and lengths in [1, FILL_SPAN]; with one extra
#: 64 KiB wasm page over the data page every fill is in bounds, while
#: lengths up to 16 KiB span as many as five 4 KiB OS pages — enough to
#: have interior pages that first/last-only touch accounting would drop.
FILL_SPAN = 4 * 4096


@dataclass(frozen=True)
class Gene:
    """One statement; field meaning depends on ``kind`` (see emission)."""

    kind: str
    a: int = 0  # additive constant (const_a in build_program)
    b: int = 1  # divisor/step constant (const_b)
    c: int = 0  # kind-specific: bound / index / flag / fill dest
    d: int = 0  # kind-specific: inner bound / direction / fill length


@dataclass(frozen=True)
class Genome:
    """A whole case: statements plus the exported function's argument."""

    genes: Tuple[Gene, ...]
    arg: int


# ----------------------------------------------------------------------
# Random generation (distributions mirror build_program)
# ----------------------------------------------------------------------
def random_gene(rng: random.Random) -> Gene:
    kind = rng.choice(GENE_KINDS)
    a = rng.randint(0, 1000)
    b = rng.randint(1, 7)
    c = d = 0
    if kind == "loop":
        c = rng.randint(1, _ARRAY_LEN)
    elif kind == "if":
        c = rng.randint(0, 1)
    elif kind == "nested":
        c = rng.randint(1, 5)
        d = rng.randint(1, 5)
    elif kind == "store":
        c = rng.randint(0, _ARRAY_LEN - 1)
    elif kind == "oob":
        c = rng.randint(10_000_000, 20_000_000)
        d = rng.randint(0, 1)
    elif kind == "div":
        c = rng.randint(0, b - 1)
    elif kind == "fill":
        c = rng.randrange(FILL_SPAN)
        d = rng.randint(1, FILL_SPAN)
    return Gene(kind, a, b, c, d)


def random_genome(rng: random.Random, max_genes: int = 5) -> Genome:
    genes = tuple(random_gene(rng) for _ in range(rng.randint(1, max_genes)))
    return Genome(genes, rng.randrange(0, 2**31))


def genome_from_seed(seed: int) -> Genome:
    """The deterministic genome of one integer seed (campaign seeding)."""
    return random_genome(random.Random(seed))


# ----------------------------------------------------------------------
# JSON round trip
# ----------------------------------------------------------------------
def genome_to_json(genome: Genome) -> dict:
    return {
        "arg": genome.arg,
        "genes": [[g.kind, g.a, g.b, g.c, g.d] for g in genome.genes],
    }


def genome_from_json(raw: dict) -> Genome:
    genes = tuple(
        Gene(str(kind), int(a), int(b), int(c), int(d))
        for kind, a, b, c, d in raw["genes"]
    )
    return Genome(genes, int(raw["arg"]))


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------
def _bounded(value: int, lo: int, hi: int) -> int:
    """Total normalisation of an arbitrary int into [lo, hi]."""
    return lo + abs(int(value)) % (hi - lo + 1)


def fill_range(gene: Gene) -> Tuple[int, int]:
    """(absolute dest, length) a ``fill`` gene writes — the single
    source of truth shared by emission and the page-span oracle."""
    dest = DslModule.DATA_BASE + _bounded(gene.c, 0, FILL_SPAN - 1)
    length = _bounded(gene.d, 1, FILL_SPAN)
    return dest, length


def fill_pages(genome: Genome) -> frozenset:
    """Every 4 KiB OS page index a genome's fill genes must touch."""
    pages = set()
    for gene in genome.genes:
        if gene.kind == "fill":
            dest, length = fill_range(gene)
            pages.update(range(dest >> 12, (dest + length - 1 >> 12) + 1))
    return frozenset(pages)


def build_genome_module(genome: Genome):
    """Compile a genome into a validated-shape wasm Module.

    Mirrors build_program's per-kind emission; every gene field is
    normalised into range first, so emission is total over arbitrary
    gene tuples (the mutators rely on this).
    """
    dm = DslModule("fuzzcampaign")
    arr = dm.array_i32("a", _ARRAY_LEN)
    f = dm.func("run", params=[("seed", "i32")], results=["i32"])
    seed = f.params[0]
    i, j = f.i32("i"), f.i32("j")
    acc = f.i32("acc")

    for gene in genome.genes:
        kind = gene.kind if gene.kind in GENE_KINDS else "store"
        const_a = _bounded(gene.a, 0, 1000)
        const_b = _bounded(gene.b, 1, 7)
        if kind == "loop":
            with f.for_(i, 0, _bounded(gene.c, 1, _ARRAY_LEN)):
                f.store(arr[i], arr[i] + i * const_b + seed)
        elif kind == "if":
            with f.if_((seed & 1).eq(_bounded(gene.c, 0, 1))) as branch:
                f.set(acc, acc + const_a)
                branch.otherwise()
                f.set(acc, acc - const_a)
        elif kind == "nested":
            with f.for_(i, 0, _bounded(gene.c, 1, 5)):
                with f.for_(j, 0, _bounded(gene.d, 1, 5)):
                    with f.if_(((i + j) % const_b).eq(0)):
                        f.store(arr[(i + j) % _ARRAY_LEN],
                                arr[(i + j) % _ARRAY_LEN] ^ const_a)
        elif kind == "while":
            f.set(j, const_b)
            with f.while_(lambda: j < const_a % 50 + 1):
                f.set(j, j * 2 + 1)
            f.set(acc, acc + j)
        elif kind == "store":
            index = _bounded(gene.c, 0, _ARRAY_LEN - 1)
            f.store(arr[index], Select(seed > const_a, acc, i) + const_b)
        elif kind == "oob":
            # Far beyond the data page: traps under the trapping
            # strategies, completes under clamp/none.
            index = _bounded(gene.c, 10_000_000, 20_000_000)
            if _bounded(gene.d, 0, 1):
                f.store(arr[index], acc + const_a)
            else:
                f.set(acc, acc + arr[index])
        elif kind == "div":
            # Traps (integer-divide-by-zero) iff seed % b == c.
            const_c = _bounded(gene.c, 0, const_b - 1)
            f.set(acc, acc + seed // ((seed % const_b) - const_c + 1) % 97)
            with f.if_((seed % const_b).eq(const_c)):
                f.set(acc, acc // (seed % const_b - const_c))
        elif kind == "trunc":
            f.set(acc, (acc.to_f64() * float(const_a + 2) + 0.5).to_i32())
        else:  # fill: bulk memory.fill via the raw builder (no DSL form)
            dest, length = fill_range(gene)
            f.fb.emit("i32.const", dest)
            f.fb.emit("i32.const", const_a & 0xFF)
            f.fb.emit("i32.const", length)
            f.fb.emit("memory.fill")

    with f.for_(i, 0, _ARRAY_LEN):
        f.set(acc, acc * 31 + arr[i])
    f.ret(acc)
    # One page of slack over the data page keeps every fill in bounds.
    return dm.build(extra_pages=1)
