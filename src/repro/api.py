"""The unified sweep facade: one spec type, two entry points.

Before this module existed the repo had three divergent ways to run a
measurement grid — ``repro.core.runner.run_sweep`` (row dicts),
``repro.core.experiments.common.measure`` (one configuration, keyed by
workload) and the diffcheck CLI's ad-hoc request builder — each with
its own keyword signature.  They are now thin deprecated shims over
this module:

* :class:`SweepSpec` — the grid description (workloads × runtimes ×
  strategies × ISAs × thread counts, plus size/iterations/warmup).
* :func:`run` — execute the grid, return flat row dicts (CSV-ready,
  schema in :data:`ROW_SCHEMA`).
* :func:`measure` — execute the grid, return a
  :class:`SweepMeasurements` wrapping the full
  :class:`~repro.core.harness.RunMeasurement` objects with grouping
  helpers (``per_workload``, ``medians``) for the figure experiments.

Both entry points share the measurement engine (``--jobs`` fan-out +
content-addressed cache; see :mod:`repro.core.engine`).  Invalid
combinations (a runtime without the requested ISA backend or strategy,
thread counts beyond the machine) are skipped by default — pass
``strict=True`` to raise instead, which is what the legacy shims do to
preserve their historical error behaviour.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import io
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.engine import (
    MeasurementEngine,
    MeasurementRequest,
    MeasurementResult,
    default_engine,
)
from repro.core.harness import RunMeasurement
from repro.cpu.machine import MACHINE_SPECS
from repro.isa import isa_named
from repro.runtime.strategies import STRATEGIES
from repro.runtimes import runtime_named
from repro.trace.events import SWEEP_GRID
from repro.trace.tracer import TRACE
from repro.workloads import WORKLOADS

__all__ = [
    "FIELDS",
    "ROW_SCHEMA",
    "SweepMeasurements",
    "SweepSpec",
    "measure",
    "row_from",
    "run",
    "to_csv",
]

#: Row schema: column name → extractor over a MeasurementResult.  CSV
#: columns derive from this single table, so adding a column here is
#: the whole change.
ROW_SCHEMA: Dict[str, Callable[[MeasurementResult], object]] = {
    "workload": lambda r: r.measurement.workload,
    "runtime": lambda r: r.measurement.runtime,
    "strategy": lambda r: r.measurement.strategy,
    "isa": lambda r: r.measurement.isa,
    "threads": lambda r: r.measurement.threads,
    "median_ms": lambda r: r.measurement.median_iteration * 1e3,
    "utilisation_percent": lambda r: r.measurement.utilisation.utilisation_percent,
    "ctx_per_sec": lambda r: r.measurement.utilisation.context_switches_per_sec,
    "mem_avg_mib": lambda r: r.measurement.mem_avg_bytes / (1 << 20),
    "mmap_write_wait_ms": lambda r: r.measurement.mmap_write_wait * 1e3,
    "checks_emitted": lambda r: r.measurement.bounds_checks.get("emitted", 0),
    "checks_elided": lambda r: r.measurement.bounds_checks.get("elided", 0),
    "syscall_calls": lambda r: sum(
        int(entry["calls"]) for entry in r.measurement.syscall_stats.values()
    ),
    "syscall_ms": lambda r: r.measurement.syscall_seconds * 1e3,
    "cache_hit": lambda r: int(r.cache_hit),
    "elapsed_s": lambda r: round(r.elapsed, 6),
}

#: The columns a sweep row always carries (derived, not hand-kept).
FIELDS = list(ROW_SCHEMA)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of benchmark configurations to run.

    Sequence fields are normalised to tuples on construction, so two
    equal grids are ``==``, hash alike, and serialise to byte-identical
    canonical JSON regardless of whether the caller passed lists or
    tuples — which is what lets :meth:`digest` serve as the sweep
    service's job-dedup key.
    """

    workloads: Sequence[str]
    runtimes: Sequence[str] = ("wavm",)
    strategies: Sequence[str] = ("mprotect",)
    isas: Sequence[str] = ("x86_64",)
    threads: Sequence[int] = (1,)
    size: str = "small"
    iterations: int = 3
    warmup: int = 1
    #: Scenario axis: "compute" (PolyBench / SPEC proxies — cost is
    #: userspace work) or "wasi" (syscall-bound workloads crossing the
    #: simulated kernel).  Declares which family the grid means to
    #: measure: mismatched workloads are skipped (or rejected under
    #: ``strict``/``validate()``), like any other invalid combination.
    scenario: str = "compute"

    _SEQUENCE_FIELDS = ("workloads", "runtimes", "strategies", "isas", "threads")

    def __post_init__(self) -> None:
        # Frozen dataclass: normalise caller-supplied lists in place.
        for name in self._SEQUENCE_FIELDS:
            value = getattr(self, name)
            if isinstance(value, str):
                raise TypeError(
                    f"SweepSpec.{name} wants a sequence of values, "
                    f"got the bare string {value!r}"
                )
            converted = (
                tuple(int(v) for v in value)
                if name == "threads"
                else tuple(str(v) for v in value)
            )
            object.__setattr__(self, name, converted)
        if self.scenario not in _SCENARIO_SUITES:
            raise ValueError(
                f"unknown scenario {self.scenario!r} "
                f"(choose from {sorted(_SCENARIO_SUITES)})"
            )

    # -- canonical (de)serialisation ----------------------------------

    def to_json(self) -> Dict[str, object]:
        """Plain-data form: lists for sequences, scalars otherwise.

        ``scenario`` is omitted at its default: every spec serialised
        before the axis existed implicitly meant "compute", and the
        omission keeps their canonical JSON — and hence every
        already-issued :meth:`digest` job key — byte-identical.
        """
        raw: Dict[str, object] = {
            "workloads": list(self.workloads),
            "runtimes": list(self.runtimes),
            "strategies": list(self.strategies),
            "isas": list(self.isas),
            "threads": list(self.threads),
            "size": self.size,
            "iterations": self.iterations,
            "warmup": self.warmup,
        }
        if self.scenario != "compute":
            raw["scenario"] = self.scenario
        return raw

    @classmethod
    def from_json(cls, raw: Dict[str, object]) -> "SweepSpec":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        if "workloads" not in raw:
            raise ValueError("SweepSpec JSON needs a 'workloads' list")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown SweepSpec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**raw)

    def canonical_json(self) -> str:
        """Byte-stable JSON text (sorted keys, no whitespace)."""
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the service's job key."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def configurations(self) -> Iterator[tuple]:
        """Valid (runtime, strategy, isa, threads) combinations."""
        for isa in self.isas:
            cores = MACHINE_SPECS[isa].cores
            for runtime in self.runtimes:
                model = runtime_named(runtime)
                if not model.supports(isa):
                    continue
                for strategy in self.strategies:
                    if strategy not in model.strategies:
                        continue
                    if not _isa_allows(isa, strategy):
                        continue
                    for threads in self.threads:
                        if threads <= cores:
                            yield (runtime, strategy, isa, threads)

    def requests(self) -> List[MeasurementRequest]:
        """The full grid, workloads outermost.

        Workload-major order keeps every configuration of one module
        adjacent, so the engine's profile/compile caches are warmed
        once per workload instead of being cycled through the whole
        workload set per configuration.
        """
        return [
            MeasurementRequest(
                workload, runtime, strategy, isa,
                threads=threads, size=self.size, iterations=self.iterations,
                warmup=self.warmup,
            )
            for workload in self.workloads
            if _workload_in_scenario(workload, self.scenario)
            for runtime, strategy, isa, threads in self.configurations()
        ]

    def validate(self) -> None:
        """Raise ValueError for any combination the grid would skip."""
        for workload in self.workloads:
            if not _workload_in_scenario(workload, self.scenario):
                suite = WORKLOADS[workload].suite
                raise ValueError(
                    f"workload {workload} belongs to the {suite!r} suite, "
                    f"outside the {self.scenario!r} scenario "
                    f"(families: {', '.join(_SCENARIO_SUITES[self.scenario])})"
                )
        for isa in self.isas:
            cores = MACHINE_SPECS[isa].cores
            for runtime in self.runtimes:
                model = runtime_named(runtime)
                if not model.supports(isa):
                    raise ValueError(
                        f"runtime {runtime} has no {isa} backend (§3.4)"
                    )
                for strategy in self.strategies:
                    if strategy not in model.strategies:
                        raise ValueError(
                            f"runtime {runtime} does not support "
                            f"strategy {strategy}"
                        )
                    if not _isa_allows(isa, strategy):
                        raise ValueError(
                            f"strategy {strategy} requires a hardware "
                            f"memory-tagging extension (Arm MTE); ISA {isa} "
                            "has none — request it on armv8 instead"
                        )
            for threads in self.threads:
                if threads > cores:
                    raise ValueError(
                        f"{threads} workers exceed the {cores}-core machine"
                    )


#: Scenario → the workload suites it measures.
_SCENARIO_SUITES: Dict[str, tuple] = {
    "compute": ("polybench", "spec"),
    "wasi": ("wasi",),
}


def _workload_in_scenario(workload: str, scenario: str) -> bool:
    """Whether a workload belongs to the spec's declared scenario.

    Unknown workload names pass through: the harness's
    ``workload_named`` failure carries the precise message, and
    skipping them here would silently shrink a typo'd grid to nothing.
    """
    entry = WORKLOADS.get(workload)
    if entry is None:
        return True
    return entry.suite in _SCENARIO_SUITES[scenario]


def _isa_allows(isa: str, strategy: str) -> bool:
    """Spec-time mirror of the harness's hardware gating.

    Rejecting (skipping) mte-on-x86_64 here means a service job or
    strict sweep fails at submission with a clear message instead of
    deep inside a worker process.  Unknown strategy names fall through
    — the runtime-support check already handles those.
    """
    model = STRATEGIES.get(strategy)
    if model is None:
        return True
    return isa_named(isa).supports_strategy(model)


def row_from(result: MeasurementResult) -> Dict[str, object]:
    return {name: extract(result) for name, extract in ROW_SCHEMA.items()}


@dataclass
class SweepMeasurements:
    """The result of :func:`measure`: requests paired with results."""

    spec: SweepSpec
    requests: List[MeasurementRequest]
    results: List[MeasurementResult]

    @property
    def measurements(self) -> List[RunMeasurement]:
        return [result.measurement for result in self.results]

    def rows(self) -> List[Dict[str, object]]:
        return [row_from(result) for result in self.results]

    def by_workload(self) -> Dict[str, List[RunMeasurement]]:
        grouped: Dict[str, List[RunMeasurement]] = {}
        for result in self.results:
            grouped.setdefault(result.measurement.workload, []).append(
                result.measurement
            )
        return grouped

    def per_workload(self) -> Dict[str, RunMeasurement]:
        """Workload → its single measurement (single-config grids)."""
        out: Dict[str, RunMeasurement] = {}
        for workload, group in self.by_workload().items():
            if len(group) != 1:
                raise ValueError(
                    f"workload {workload} has {len(group)} measurements; "
                    "per_workload() needs a single-configuration spec"
                )
            out[workload] = group[0]
        return out

    def medians(self) -> Dict[str, float]:
        """Workload → median iteration seconds (single-config grids)."""
        return {
            name: m.median_iteration for name, m in self.per_workload().items()
        }


def _execute_spec(
    spec: SweepSpec,
    engine: Optional[MeasurementEngine],
    progress,
    strict: bool,
) -> SweepMeasurements:
    if strict:
        spec.validate()
    engine = engine if engine is not None else default_engine()
    requests = spec.requests()
    if TRACE.enabled:
        TRACE.emit(0.0, SWEEP_GRID, requests=len(requests))
    results = engine.run(requests, progress=progress)
    return SweepMeasurements(spec=spec, requests=requests, results=results)


def run(
    spec: SweepSpec,
    *,
    engine: Optional[MeasurementEngine] = None,
    progress: Optional[Callable[[str], None]] = None,
    strict: bool = False,
) -> List[Dict[str, object]]:
    """Run every valid configuration × workload; returns result rows."""
    return _execute_spec(spec, engine, progress, strict).rows()


def measure(
    spec: SweepSpec,
    *,
    engine: Optional[MeasurementEngine] = None,
    progress: Optional[Callable[[str], None]] = None,
    strict: bool = False,
    verbose: bool = False,
) -> SweepMeasurements:
    """Run the grid and keep the full measurement objects."""
    swept = _execute_spec(spec, engine, progress, strict)
    if verbose:
        for request, result in zip(swept.requests, swept.results):
            origin = "cache" if result.cache_hit else f"{result.elapsed:.1f}s"
            print(
                f"    {request.workload:16s} {request.runtime}/"
                f"{request.strategy}/{request.isa}/t{request.threads}: "
                f"{result.measurement.median_iteration * 1e3:.3f} ms "
                f"[{origin}]"
            )
    return swept


def to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render sweep rows as CSV text.

    Columns are the schema-derived :data:`FIELDS` plus, appended in
    sorted order, any extra keys present in the rows — nothing a row
    carries is silently dropped.
    """
    extras = sorted(
        {key for row in rows for key in row} - set(FIELDS)
    )
    fieldnames = FIELDS + extras
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in fieldnames})
    return buffer.getvalue()
