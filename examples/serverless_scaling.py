#!/usr/bin/env python3
"""The paper's serverless scenario: mprotect vs userfaultfd at scale.

§4.2.1 recommends userspace page-fault handling over mprotect "for
short-lived WebAssembly tasks, such as for certain classes of
serverless applications".  This example plays that scenario through
the system simulation: a short PolyBench kernel (a stand-in for a
short serverless function) is spun up repeatedly on 1, 4 and 16
pinned worker threads under both strategies, and we watch iteration
latency, machine saturation and mmap_lock contention.

Run:  python examples/serverless_scaling.py
"""

from repro.core.harness import run_benchmark
from repro.reporting import render_table

WORKLOAD = "trisolv"  # a ~1 ms "function"
RUNTIME = "wavm"


def main() -> None:
    rows = []
    for strategy in ("mprotect", "uffd", "none"):
        for threads in (1, 4, 16):
            m = run_benchmark(
                WORKLOAD, RUNTIME, strategy, "x86_64",
                threads=threads, size="mini", iterations=5,
            )
            rows.append(
                (
                    strategy,
                    threads,
                    m.median_iteration * 1e3,
                    m.utilisation.utilisation_percent,
                    m.mmap_write_wait * 1e3,
                    m.utilisation.context_switches_per_sec,
                )
            )
    print(
        render_table(
            ["strategy", "threads", "median ms", "CPU util %",
             "mmap_lock write-wait ms", "ctx/s"],
            rows,
            title=(
                f"Short serverless function ({WORKLOAD} on {RUNTIME}): "
                "scaling isolates across a 16-core machine"
            ),
        )
    )
    mprotect16 = next(r for r in rows if r[0] == "mprotect" and r[1] == 16)
    uffd16 = next(r for r in rows if r[0] == "uffd" and r[1] == 16)
    print(
        f"\nAt 16 threads, mprotect leaves "
        f"{1600 - mprotect16[3]:.0f}% of the machine idle waiting on "
        f"mmap_lock; uffd leaves {1600 - uffd16[3]:.0f}%.\n"
        "That is the paper's recommendation in action: use userfaultfd "
        "for short-lived instances."
    )


if __name__ == "__main__":
    main()
