#!/usr/bin/env python3
"""Using the WebAssembly substrate as a standalone toolchain.

The repro.wasm package is a complete, self-contained Wasm MVP
implementation.  This example builds a module with recursion,
function tables and memory, then exercises the whole toolchain:

* encode it to real ``.wasm`` bytes and decode them back;
* validate the decoded module;
* pretty-print it as WAT;
* instantiate and run it, including a ``call_indirect`` dispatch and
  an out-of-bounds trap.

Run:  python examples/wasm_toolchain.py
"""

from repro.runtime import Interpreter
from repro.wasm import (
    ModuleBuilder,
    Trap,
    decode_module,
    encode_module,
    module_to_wat,
    validate_module,
)
from repro.wasm.types import ValType

I32 = ValType.I32


def build_module():
    mb = ModuleBuilder("toolchain-demo")
    mb.add_memory(1)

    # fib(n), recursively.
    fib = mb.func("fib", params=[I32], results=[I32], export=True)
    fib.emit("local.get", 0)
    fib.emit("i32.const", 2)
    fib.emit("i32.lt_s")
    with fib.if_(I32):
        fib.emit("local.get", 0)
        fib.else_()
        fib.emit("local.get", 0)
        fib.emit("i32.const", 1)
        fib.emit("i32.sub")
        fib.emit("call", fib.index)
        fib.emit("local.get", 0)
        fib.emit("i32.const", 2)
        fib.emit("i32.sub")
        fib.emit("call", fib.index)
        fib.emit("i32.add")

    # double(n) and square(n), dispatched through a function table.
    double = mb.func("double", params=[I32], results=[I32])
    double.emit("local.get", 0)
    double.emit("i32.const", 2)
    double.emit("i32.mul")
    square = mb.func("square", params=[I32], results=[I32])
    square.emit("local.get", 0)
    square.emit("local.get", 0)
    square.emit("i32.mul")

    mb.add_table(2)
    mb.add_element(0, 0, [double.index, square.index])
    type_index = mb.module.add_type(double.func_type())

    apply_fb = mb.func("apply", params=[I32, I32], results=[I32], export=True)
    apply_fb.emit("local.get", 1)  # argument
    apply_fb.emit("local.get", 0)  # table slot
    apply_fb.emit("call_indirect", type_index, 0)

    # A deliberately out-of-bounds store.
    oob = mb.func("oob", export=True)
    oob.emit("i32.const", 10 * 65536)  # way past the 1-page memory
    oob.emit("i32.const", 42)
    oob.emit("i32.store", 2, 0)

    return mb.build()


def main() -> None:
    module = build_module()
    validate_module(module)

    binary = encode_module(module)
    print(f"encoded to {len(binary)} bytes of .wasm "
          f"(magic: {binary[:4]!r})")
    decoded = decode_module(binary)
    validate_module(decoded)
    assert encode_module(decoded) == binary
    print("binary round-trip: stable\n")

    print(module_to_wat(decoded))
    print()

    interp = Interpreter(decoded, strategy="trap")
    print(f"fib(15)      = {interp.invoke('fib', 15)}")
    print(f"apply(0, 21) = {interp.invoke('apply', 0, 21)}   (double)")
    print(f"apply(1, 12) = {interp.invoke('apply', 1, 12)}  (square)")
    try:
        interp.invoke("oob")
    except Trap as trap:
        print(f"oob()        trapped as expected: {trap.kind}")


if __name__ == "__main__":
    main()
