#!/usr/bin/env python3
"""Adding your own benchmark to the characterization pipeline.

The paper's benchmark suite is open for extension: anything you can
express in the DSL becomes a first-class workload.  This example
implements an N-body velocity update (a classic FLOP-heavy kernel the
suites don't cover), verifies it against NumPy, and then pushes it
through the cross-ISA runtime comparison — the same analysis Fig. 2
applies to PolyBench.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.isa import ISAS
from repro.reporting import render_table
from repro.runtime import Interpreter, strategy_named
from repro.runtimes import runtime_named
from repro.wasm.dsl import DslModule
from repro.workloads.base import read_array

N_BODIES = 24
DT = 1e-2
SOFTENING = 1e-3


def build_nbody():
    dm = DslModule("nbody")
    pos = dm.array_f64("pos", N_BODIES, 3)
    vel = dm.array_f64("vel", N_BODIES, 3)
    mass = dm.array_f64("mass", N_BODIES)

    init = dm.func("init")
    i = init.i32("i")
    with init.for_(i, 0, N_BODIES):
        init.store(pos[i, 0], (i % 5).to_f64() * 0.7)
        init.store(pos[i, 1], (i % 7).to_f64() * 0.5)
        init.store(pos[i, 2], (i % 3).to_f64() * 0.9)
        init.store(mass[i], 1.0 + (i % 4).to_f64() * 0.25)

    step = dm.func("step")
    i, j, k = step.i32("i"), step.i32("j"), step.i32("k")
    dx, dy, dz = step.f64(), step.f64(), step.f64()
    inv_r3 = step.f64()
    with step.for_(i, 0, N_BODIES):
        with step.for_(j, 0, N_BODIES):
            with step.if_(i.ne(j)):
                step.set(dx, pos[j, 0] - pos[i, 0])
                step.set(dy, pos[j, 1] - pos[i, 1])
                step.set(dz, pos[j, 2] - pos[i, 2])
                r2 = dx * dx + dy * dy + dz * dz + SOFTENING
                step.set(inv_r3, 1.0 / (r2 * r2.sqrt()))
                step.store(vel[i, 0], vel[i, 0] + DT * mass[j] * dx * inv_r3)
                step.store(vel[i, 1], vel[i, 1] + DT * mass[j] * dy * inv_r3)
                step.store(vel[i, 2], vel[i, 2] + DT * mass[j] * dz * inv_r3)
        with step.for_(k, 0, 3):
            step.store(pos[i, k], pos[i, k] + DT * vel[i, k])

    bench = dm.func("bench")
    bench.call(init)
    bench.call(step)
    return dm.build(), pos, vel


def numpy_reference():
    idx = np.arange(N_BODIES)
    pos = np.stack([(idx % 5) * 0.7, (idx % 7) * 0.5, (idx % 3) * 0.9], axis=1)
    vel = np.zeros((N_BODIES, 3))
    mass = 1.0 + (idx % 4) * 0.25
    # Mirror the kernel's sequential update order exactly.
    for i in range(N_BODIES):
        for j in range(N_BODIES):
            if i == j:
                continue
            d = pos[j] - pos[i]
            r2 = float(d @ d) + SOFTENING
            inv_r3 = 1.0 / (r2 * np.sqrt(r2))
            vel[i] += DT * mass[j] * d * inv_r3
        pos[i] += DT * vel[i]
    return pos, vel


def main() -> None:
    module, pos_arr, vel_arr = build_nbody()

    # -- verify against NumPy --------------------------------------------
    interp = Interpreter(module)
    interp.invoke("bench")
    got_pos = read_array(interp, pos_arr)
    got_vel = read_array(interp, vel_arr)
    ref_pos, ref_vel = numpy_reference()
    np.testing.assert_allclose(got_pos, ref_pos, rtol=1e-9)
    np.testing.assert_allclose(got_vel, ref_vel, rtol=1e-9)
    print(f"nbody({N_BODIES}) matches the NumPy reference ✓")

    profile = interp.take_profile("nbody", "demo")
    print(f"{profile.total_instrs} dynamic wasm ops, "
          f"{100 * profile.mem_access_fraction:.1f}% memory accesses\n")

    # -- the Fig. 2 analysis, applied to the new workload ------------------
    rows = []
    for isa_name, isa in ISAS.items():
        native = runtime_named("native-clang").cycles(
            module, profile, isa, strategy_named("none")
        )
        for runtime_name in ("wavm", "wasmtime", "v8", "wasm3"):
            runtime = runtime_named(runtime_name)
            if not runtime.supports(isa_name):
                continue
            cycles = runtime.cycles(
                module, profile, isa, strategy_named(runtime.default_strategy)
            )
            rows.append((isa_name, runtime_name, runtime.default_strategy,
                         cycles / native))
    print(
        render_table(
            ["ISA", "runtime", "strategy", "time vs native"],
            rows,
            title="Custom workload under the paper's cross-ISA comparison",
        )
    )


if __name__ == "__main__":
    main()
