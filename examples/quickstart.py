#!/usr/bin/env python3
"""Quickstart: author a Wasm kernel, execute it, and cost it everywhere.

This walks the library's whole pipeline in one page:

1. write a small numeric kernel in the Wasm DSL (a dot product);
2. run it in the interpreter and check the numeric result;
3. collect its dynamic profile;
4. price it under every runtime × bounds-checking strategy on x86-64.

Run:  python examples/quickstart.py
"""

from repro.isa import isa_named
from repro.reporting import render_table
from repro.runtime import Interpreter, strategy_named
from repro.runtimes import RUNTIMES, runtime_named
from repro.wasm.dsl import DslModule


def build_dot_product(n: int):
    dm = DslModule("dot")
    x = dm.array_f64("x", n)
    y = dm.array_f64("y", n)

    init = dm.func("init")
    i = init.i32("i")
    with init.for_(i, 0, n):
        init.store(x[i], i.to_f64() * 0.5)
        init.store(y[i], (n - i).to_f64() * 0.25)

    dot = dm.func("dot", results=["f64"])
    i = dot.i32("i")
    acc = dot.f64("acc")
    with dot.for_(i, 0, n):
        dot.set(acc, acc + x[i] * y[i])
    dot.ret(acc)

    bench = dm.func("bench")
    bench.call(init)
    bench.eval_drop(bench.call(dot))
    return dm.build()


def main() -> None:
    n = 256
    module = build_dot_product(n)

    # -- functional execution + profiling ------------------------------
    interp = Interpreter(module)
    interp.invoke("init")
    result = interp.invoke("dot")
    expected = sum((i * 0.5) * ((n - i) * 0.25) for i in range(n))
    print(f"dot product = {result:.3f} (expected {expected:.3f})")
    assert abs(result - expected) < 1e-6

    interp2 = Interpreter(module)
    interp2.invoke("bench")
    profile = interp2.take_profile("dot", "demo")
    print(
        f"profile: {profile.total_instrs} wasm ops, "
        f"{profile.mem_accesses} memory accesses "
        f"({100 * profile.mem_access_fraction:.1f}% of ops)"
    )

    # -- cost under every configuration --------------------------------
    isa = isa_named("x86_64")
    baseline = runtime_named("native-clang").cycles(
        module, profile, isa, strategy_named("none")
    )
    rows = []
    for runtime_name in ("native-clang", "native-gcc", "wavm", "wasmtime", "v8", "wasm3"):
        runtime = RUNTIMES[runtime_name]
        for strategy_name in runtime.strategies:
            strategy = strategy_named(strategy_name)
            if not isa.supports_strategy(strategy):
                continue  # mte needs Arm's memory-tagging extension
            cycles = runtime.cycles(module, profile, isa, strategy)
            rows.append((runtime_name, strategy_name, cycles / baseline))
    print()
    print(
        render_table(
            ["runtime", "strategy", "time vs native-clang"],
            rows,
            title=f"dot product ({n} elements) on the x86-64 model",
        )
    )


if __name__ == "__main__":
    main()
