#!/usr/bin/env python
"""Sweep-service latency/throughput benchmark (``BENCH_service.json``).

Starts a real ``leaps-bench serve`` daemon as a subprocess, warms its
caches with one sweep, then drives it with the asyncio load generator
at several concurrency levels — by default 100, 1 000 and 10 000
simultaneously open submit-and-wait jobs, the "productionized" claim
this PR makes.  Per level the committed report records client-observed
p50/p90/p99/max latency, jobs/s and rows/s, plus the daemon's own
``/metrics`` counters (row-LRU hits, in-flight coalescing, engine
cache stats) so a regression in either the HTTP layer or the dedup
ladder shows up as a number, not a feeling.

Methodology notes:

* The grid is one warm-cached configuration (trisolv/wavm/mprotect,
  mini), so the benchmark times the *service* — connection handling,
  request parsing, the row-LRU ladder, response framing — not the
  simulator.  Cold-measurement time is recorded once under ``warm``.
* Every job at every level is the same spec, so rows resolve from the
  row LRU; levels are comparable and re-runs are stable.
* Latency is measured client-side (first request byte to parsed
  response) over keep-alive connections, one in-flight job per
  connection: service-side open jobs == the concurrency level.

Run: ``PYTHONPATH=src python benchmarks/service_bench.py [--quick]``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.api import SweepSpec  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.loadgen import run_load  # noqa: E402

BASELINE = REPO / "BENCH_service.json"

#: One warm-cached cell: the benchmark times the service, not the sim.
SPEC = SweepSpec(
    workloads=["trisolv"], runtimes=["wavm"], strategies=["mprotect"],
    size="mini", iterations=2,
)

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def start_daemon(cache_dir: Path):
    """Spawn ``leaps-bench serve --port 0``; returns (proc, host, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.core.cli", "serve",
            "--port", "0", "--cache-dir", str(cache_dir),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO,
    )
    line = proc.stdout.readline()
    match = _LISTEN_RE.search(line)
    if not match:
        proc.kill()
        raise RuntimeError(f"daemon did not announce a port: {line!r}")
    return proc, match.group(1), int(match.group(2))


def run_benchmark(levels, jobs_per_level) -> dict:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="svc-bench-") as tmp:
        proc, host, port = start_daemon(Path(tmp))
        try:
            with ServiceClient(host, port, timeout=300) as client:
                # Warm: first job computes the measurement, second is
                # served whole from the row LRU.
                started = time.monotonic()
                first = client.submit(SPEC, wait=True)
                cold_s = time.monotonic() - started
                second = client.submit(SPEC, wait=True)
                warm = {
                    "cold_job_s": round(cold_s, 4),
                    "cold_sources": first["sources"],
                    "warm_sources": second["sources"],
                }

            results = []
            for concurrency in levels:
                total = jobs_per_level(concurrency)
                report = asyncio.run(
                    run_load(
                        host, port, SPEC,
                        concurrency=concurrency, total_jobs=total,
                    )
                )
                with ServiceClient(host, port, timeout=60) as client:
                    metrics = client.metrics()
                report["metrics"] = {
                    "requests": metrics["requests"],
                    "row_cache": {
                        k: metrics["row_cache"][k]
                        for k in ("hits", "misses", "evictions", "peak")
                    },
                    "jobs_completed": metrics["jobs"]["completed"],
                }
                results.append(report)
                print(
                    f"  c={concurrency:>6}: {report['jobs']} jobs in "
                    f"{report['wall_s']}s  p50={report['p50_ms']}ms  "
                    f"p99={report['p99_ms']}ms  "
                    f"{report['rows_per_s']} rows/s",
                    flush=True,
                )

            with ServiceClient(host, port, timeout=60) as client:
                client.shutdown()
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": {"cpus": os.cpu_count(), "python": sys.version.split()[0]},
        "spec": SPEC.to_json(),
        "spec_digest": SPEC.digest(),
        "methodology": (
            "one daemon subprocess; warm row-LRU grid; one in-flight "
            "submit-and-wait job per keep-alive connection, so the "
            "concurrency level equals the service-side open job count; "
            "latency measured client-side"
        ),
        "warm": warm,
        "levels": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--levels", type=lambda v: [int(x) for x in v.split(",")],
        default=None, help="comma-separated concurrency levels",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small levels for smoke use (does not update the baseline)",
    )
    parser.add_argument(
        "--output", default=None,
        help=f"report path (default: {BASELINE}; --quick prints only)",
    )
    args = parser.parse_args(argv)

    if args.levels is not None:
        levels = args.levels
    elif args.quick:
        levels = [10, 50, 100]
    else:
        levels = [100, 1000, 10000]

    def jobs_per_level(concurrency: int) -> int:
        # Enough jobs that every connection cycles a few times at the
        # small levels; at 10k one job per connection already measures
        # the full open-connection regime.
        return max(concurrency, min(4 * concurrency, 4000))

    print(f"service bench: levels {levels}", flush=True)
    report = run_benchmark(levels, jobs_per_level)

    failures = [lvl for lvl in report["levels"] if lvl["failures"]]
    if failures:
        print(f"FAILED levels: {failures}", file=sys.stderr)
        return 1

    output = args.output
    if output is None and not args.quick:
        output = BASELINE
    text = json.dumps(report, indent=2)
    if output:
        Path(output).write_text(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
