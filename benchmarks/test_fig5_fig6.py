"""Benches regenerating Figures 5 and 6 (context switches + memory)."""

from repro.core.experiments import fig5, fig6
from repro.core.experiments.common import save_results


class TestFig5:
    def test_fig5_context_switches(self, benchmark, bench_sets):
        rows = benchmark.pedantic(
            lambda: fig5.run(isa="x86_64", size="mini", suites=("polybench",)),
            rounds=1, iterations=1,
        )
        save_results("bench-fig5-x86_64", rows)
        by = {
            (r["runtime"], r["strategy"], r["threads"]): r["ctx_per_sec"]
            for r in rows
        }
        # V8's 16-thread blow-up and mprotect's lock-sleep churn.
        assert by[("v8", "none", 16)] > 3 * by[("wavm", "none", 16)]
        assert by[("wavm", "mprotect", 16)] > 3 * by[("wavm", "none", 16)]


class TestFig6:
    def test_fig6_memory(self, benchmark, bench_sets):
        def both_isas():
            return (
                fig6.run(isa="x86_64", size="mini", suites=("polybench",)),
                fig6.run(isa="armv8", size="mini", suites=("polybench",)),
            )

        x86_rows, arm_rows = benchmark.pedantic(both_isas, rounds=1, iterations=1)
        save_results("bench-fig6-x86_64", x86_rows)
        save_results("bench-fig6-armv8", arm_rows)
        x86 = {(r["runtime"], r["strategy"]): r["mem_avg_mib"] for r in x86_rows}
        arm = {(r["runtime"], r["strategy"]): r["mem_avg_mib"] for r in arm_rows}
        # §4.3: THP granularity inflates the x86 numbers.
        assert x86[("wavm", "none")] > 3 * arm[("wavm", "none")]
        # Strategy-insensitive within a runtime.
        values = [x86[("wavm", s)] for s in ("none", "trap", "mprotect", "uffd")]
        assert max(values) < 2.0 * min(values)
