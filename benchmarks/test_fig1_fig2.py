"""Benches regenerating Figures 1 and 2 (single-thread comparisons)."""

from repro.core.experiments import fig1, fig2
from repro.core.experiments.common import save_results


class TestFig1:
    def test_fig1_regenerate(self, benchmark, bench_sets):
        rows = benchmark.pedantic(
            lambda: fig1.run(size="mini"), rounds=1, iterations=1
        )
        save_results("bench-fig1", rows)
        # Bounds checking only ever costs time on V8.
        for row in rows:
            assert row["v8_default_vs_native"] >= row["v8_none_vs_native"] * 0.99
        # The spread exists: some benchmarks pay visibly, some don't.
        overheads = [row["trap_overhead_pct"] for row in rows]
        assert max(overheads) > 2 * max(1.0, min(overheads))


class TestFig2:
    def test_fig2_x86(self, benchmark, bench_sets):
        rows = benchmark.pedantic(
            lambda: fig2.run("x86_64", size="mini"), rounds=1, iterations=1
        )
        save_results("bench-fig2-x86_64", rows)
        by = {
            (r["suite"], r["runtime"], r["strategy"]): r["geomean_vs_native"]
            for r in rows
        }
        assert by[("polybench", "wavm", "mprotect")] < by[
            ("polybench", "wasmtime", "mprotect")
        ] < by[("polybench", "wasm3", "trap")]
        assert 5.0 < by[("polybench", "wasm3", "trap")] < 15.0

    def test_fig2_armv8(self, benchmark, bench_sets):
        rows = benchmark.pedantic(
            lambda: fig2.run("armv8", size="mini"), rounds=1, iterations=1
        )
        save_results("bench-fig2-armv8", rows)
        by = {
            (r["suite"], r["runtime"], r["strategy"]): r["geomean_vs_native"]
            for r in rows
        }
        # Cross-ISA consistency of strategy costs (§1.3): trap-vs-none
        # gap within a few points of the x86 gap for WAVM.
        gap = by[("polybench", "wavm", "trap")] / by[("polybench", "wavm", "none")]
        assert 1.0 < gap < 1.6

    def test_fig2_riscv(self, benchmark, bench_sets):
        rows = benchmark.pedantic(
            lambda: fig2.run("riscv64", size="mini"), rounds=1, iterations=1
        )
        save_results("bench-fig2-riscv64", rows)
        runtimes = {r["runtime"] for r in rows}
        assert runtimes == {"native-gcc", "v8", "wasm3"}
