"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one mechanism of the compiler/kernel model and
reports how the headline numbers move — evidence that the mechanisms
(not tuned constants) produce the paper's shapes:

* addressing-mode fusion — turning it off should hurt every compiled
  configuration and *shrink* the relative cost of inline checks
  (because checks inhibit fusion, §isel);
* check elimination — LLVM-class CSE of redundant bounds checks is a
  big part of why WAVM tolerates ``trap`` better than Cranelift;
* loop-invariant code motion — the pass with the largest single
  effect on PolyBench-style address arithmetic;
* THP granularity — without huge-page zap batching, the mprotect
  strategy's exclusive sections grow ~500x.
"""

import pytest

from repro.compiler.pipeline import ALL_PASSES, CompilerConfig, compile_module
from repro.compiler.timing import cycles_for_profile
from repro.core.experiments.common import save_results
from repro.core.profiles import profile_for
from repro.isa import isa_named
from repro.runtime import strategy_named


@pytest.fixture(scope="module")
def gemm():
    return profile_for("gemm", "mini")


def cost(gemm, passes, fusion, strategy):
    module, profile = gemm
    config = CompilerConfig(
        name="ablation", passes=frozenset(passes),
        regalloc_quality=1.0, addressing_fusion=fusion,
    )
    compiled = compile_module(
        module, isa_named("x86_64"), config, strategy_named(strategy)
    )
    return cycles_for_profile(compiled, profile)


class TestFusionAblation:
    def test_fusion_speeds_up_unchecked_code(self, benchmark, gemm):
        def measure():
            with_fusion = cost(gemm, ALL_PASSES, True, "none")
            without = cost(gemm, ALL_PASSES, False, "none")
            return without / with_fusion

        ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
        save_results("ablation-fusion", {"none_slowdown_without_fusion": ratio})
        # Modest on gemm: CSE already shares most address chains, so
        # few single-use chains remain to fold.
        assert ratio > 1.02

    def test_checks_already_pay_the_fusion_tax(self, gemm):
        # With inline checks, fusion is inhibited anyway, so disabling
        # it moves trap-strategy cost by less than none-strategy cost.
        trap_with = cost(gemm, ALL_PASSES, True, "trap")
        trap_without = cost(gemm, ALL_PASSES, False, "trap")
        none_with = cost(gemm, ALL_PASSES, True, "none")
        none_without = cost(gemm, ALL_PASSES, False, "none")
        assert trap_without / trap_with < none_without / none_with


class TestCheckElimAblation:
    def test_checkelim_reduces_trap_cost(self, benchmark, gemm):
        def measure():
            with_elim = cost(gemm, ALL_PASSES, True, "trap")
            without = cost(gemm, ALL_PASSES - {"checkelim"}, True, "trap")
            return without / with_elim

        ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
        save_results("ablation-checkelim", {"trap_slowdown_without_elim": ratio})
        assert ratio > 1.01

    def test_checkelim_is_noop_for_guard_strategies(self, gemm):
        with_elim = cost(gemm, ALL_PASSES, True, "mprotect")
        without = cost(gemm, ALL_PASSES - {"checkelim"}, True, "mprotect")
        assert with_elim == pytest.approx(without)


class TestLicmAblation:
    def test_licm_is_the_biggest_single_pass(self, benchmark, gemm):
        def measure():
            full = cost(gemm, ALL_PASSES, True, "none")
            ratios = {}
            for dropped in ("licm", "cse", "strength", "dce"):
                ratios[dropped] = (
                    cost(gemm, ALL_PASSES - {dropped}, True, "none") / full
                )
            return ratios

        ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
        save_results("ablation-passes", ratios)
        assert ratios["licm"] >= max(ratios["strength"], ratios["dce"])
        assert ratios["licm"] > 1.10


class TestThpAblation:
    def test_thp_batching_bounds_mprotect_hold_times(self, benchmark):
        """Replay the mprotect reset with and without THP zap batching."""
        from repro.cpu import Machine, MachineSpec, SimThread
        from repro.oskernel import Kernel
        from repro.oskernel.layout import PAGE_SIZE
        from repro.oskernel.vma import Prot
        from repro.sim import Engine

        def reset_cost(thp: bool) -> float:
            engine = Engine()
            machine = Machine(
                engine,
                MachineSpec("t", "x86_64", 1, 1e9, 1 << 30, switch_cost=0.0),
            )
            kernel = Kernel(engine, machine)
            proc = kernel.create_process("p")
            thread = SimThread(engine, "t", machine.core(0), tgid=proc.tgid)
            pages = 4096  # a 16 MiB arena

            def body():
                yield from thread.startup()
                area = yield from kernel.sys_mmap_reserve(
                    thread, proc, pages * PAGE_SIZE, "mem"
                )
                yield from kernel.sys_mprotect(
                    thread, proc, area, 0, pages * PAGE_SIZE, Prot.RW, thp=thp
                )
                yield from kernel.fault_anon_batch(
                    thread, proc, area, 0, pages * PAGE_SIZE, thp=thp
                )
                start = engine.now
                yield from kernel.sys_mprotect(
                    thread, proc, area, 0, pages * PAGE_SIZE, Prot.NONE, thp=thp
                )
                thread.finish()
                return engine.now - start

            return engine.run_process(body())

        def measure():
            return reset_cost(thp=False) / reset_cost(thp=True)

        ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
        save_results("ablation-thp", {"reset_slowdown_without_thp": ratio})
        assert ratio > 20.0
