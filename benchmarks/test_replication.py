"""Bench regenerating the §4.4 replication table."""

from repro.core.experiments import replication
from repro.core.experiments.common import save_results


def test_replication_table(benchmark, bench_sets):
    rows = benchmark.pedantic(
        lambda: replication.run(size="mini"), rounds=1, iterations=1
    )
    save_results("bench-replication", rows)
    by = {r["claim"]: r["measured"] for r in rows}
    for isa in ("x86_64", "armv8", "riscv64"):
        assert 4.0 < by[f"wasm3-vs-v8-{isa}"] < 15.0
    assert by["rossberg-within-2x"].startswith(("3/3", "2/3"))
