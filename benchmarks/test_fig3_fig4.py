"""Benches regenerating Figures 3 and 4 (thread scaling + utilisation)."""

from repro.core.experiments import fig3, fig4
from repro.core.experiments.common import save_results


class TestFig3:
    def test_fig3_polybench_scaling(self, benchmark, bench_sets):
        rows = benchmark.pedantic(
            lambda: fig3.run(isa="x86_64", size="mini", suites=("polybench",)),
            rounds=1, iterations=1,
        )
        save_results("bench-fig3-x86_64", rows)
        at16 = {
            (r["runtime"], r["strategy"]): r["slowdown_vs_1t"]
            for r in rows if r["threads"] == 16
        }
        # §4.1.1: mprotect is the worst-scaling strategy on PolyBench.
        for runtime in ("wavm", "wasmtime", "v8"):
            assert at16[(runtime, "mprotect")] >= at16[(runtime, "none")]
        # none/uffd scale essentially perfectly.
        assert at16[("wavm", "none")] < 1.03
        assert at16[("wavm", "uffd")] < 1.05


class TestFig4:
    def test_fig4_utilisation(self, benchmark, bench_sets):
        rows = benchmark.pedantic(
            lambda: fig4.run(isa="x86_64", size="mini", suites=("polybench",)),
            rounds=1, iterations=1,
        )
        save_results("bench-fig4-x86_64", rows)
        by = {
            (r["runtime"], r["strategy"], r["threads"]): r["utilisation_percent"]
            for r in rows
        }
        # All runtimes saturate one core alone; V8 exceeds it (helpers).
        assert by[("wavm", "none", 1)] > 95
        assert by[("v8", "none", 1)] > 110
        # 16 threads: mprotect cannot saturate; V8 cannot saturate.
        assert by[("wavm", "mprotect", 16)] < by[("wavm", "none", 16)] - 40
        assert by[("v8", "none", 16)] < 1560
        assert by[("wavm", "uffd", 16)] > 1550
