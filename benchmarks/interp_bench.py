#!/usr/bin/env python
"""Interpreter tier benchmark and performance-regression gate.

Measures the wall-clock cost of one ``bench`` invocation per workload
(mini-size PolyBench) under all three execution tiers:

* ``legacy`` — the pre-rewrite one-closure-per-op interpreter, kept
  verbatim as the honest baseline;
* ``fused``  — the pre-decoded, superinstruction-fused fast path;
* ``opt``    — fused dispatch plus the tier-2 whole-function compiler
  (:mod:`repro.runtime.vectorize`) for hot functions.

Each timing takes ``--repeats`` (default 5) invocations on a
pre-constructed interpreter, so module decode/validation/plan costs are
excluded and only dispatch throughput is measured.  The *median* of the
five is reported for information; the gated metric is the *best* of
the five — on shared CI machines the minimum estimates the noise-free
floor, while the median still carries scheduler interference.

Noise policy
------------
Raw milliseconds are not comparable across machines, so the committed
baseline (``BENCH_interp.json``) stores *normalized throughput*: wasm
instructions per second divided by the iterations/second of a fixed
pure-Python calibration loop.  Each repeat times the calibration loop
and the invocation back to back in one round (milliseconds apart), so
host slowdowns hit both sides of the ratio.  Normalized throughput is
*recorded* per workload but *not gated*: on shared CI hosts its run-to-
run jitter exceeds any useful threshold.  The gated statistics are the
median-across-workloads fused/legacy and opt/legacy speedups, where
both sides execute the same instruction stream in the same rounds —
empirically stable to a few percent when individual workloads swing
+/-15%.  The gate (``--check``) fails when:

* the median fused/legacy speedup drops below ``--min-speedup``
  (default 3.0, the acceptance floor; a machine-independent ratio),
* the median opt/legacy speedup drops below ``--min-speedup-opt``
  (default 10.0), or
* either median regresses more than ``--threshold`` (default 15%)
  below the committed baseline's ``median_speedup`` /
  ``median_speedup_opt``.

Gate failures name the violating tier and per-workload ratios so a CI
log alone identifies the regression.

To absorb transient spikes the gate re-measures once before failing.
Update the baseline with ``--update-baseline`` after an intentional
interpreter change, and say why in the commit message.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.profiles import module_for  # noqa: E402
from repro.runtime.interpreter import Interpreter  # noqa: E402
from repro.runtime.predecode import interpreter_build_digest  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_interp.json"
WORKLOADS = ("gemm", "2mm", "atax", "trisolv", "jacobi-2d")
SIZE = "mini"
_CALIBRATION_ITERS = 200_000


def _calibration_loop(n: int) -> int:
    acc = 0
    for i in range(n):
        acc = (acc + i) & 0xFFFFFFFF
    return acc


def _interp_for(module, tier: str, module_digest=None):
    interp = Interpreter(
        module,
        collect_profile=False,
        track_pages=False,
        validate=False,
        tier=tier,
        module_digest=module_digest,
    )
    interp.invoke("bench")  # warm-up: compiles (and tiers up) every function
    return interp


def _measure_rounds(module, module_digest, repeats: int):
    """Per-round (calibration_s, legacy_s, fused_s, opt_s) tuples.

    All timings of a round run back to back so transient host
    interference is correlated across them.
    """
    interps = [
        _interp_for(module, tier, module_digest)
        for tier in ("legacy", "fused", "opt")
    ]
    rounds = []
    for _ in range(repeats):
        start = time.perf_counter()
        _calibration_loop(_CALIBRATION_ITERS)
        timings = [time.perf_counter() - start]
        for interp in interps:
            start = time.perf_counter()
            interp.invoke("bench")
            timings.append(time.perf_counter() - start)
        rounds.append(tuple(timings))
    return rounds


def _total_instrs(module) -> int:
    interp = Interpreter(module, collect_profile=True, track_pages=True)
    interp.invoke("bench")
    return interp.take_profile("bench", SIZE).total_instrs


def run_benchmark(repeats: int) -> dict:
    rows = {}
    for name in WORKLOADS:
        module, digest = module_for(name, SIZE)
        total_instrs = _total_instrs(module)
        rounds = _measure_rounds(module, digest, repeats)
        legacy_s = min(r[1] for r in rounds)
        fused_s = min(r[2] for r in rounds)
        opt_s = min(r[3] for r in rounds)
        normalized = statistics.median(
            (total_instrs / f) / (_CALIBRATION_ITERS / c)
            for c, _, f, _ in rounds
        )
        rows[name] = {
            "total_instrs": total_instrs,
            "legacy_ms": round(legacy_s * 1e3, 3),
            "fused_ms": round(fused_s * 1e3, 3),
            "opt_ms": round(opt_s * 1e3, 3),
            "legacy_median_ms": round(
                statistics.median(r[1] for r in rounds) * 1e3, 3
            ),
            "fused_median_ms": round(
                statistics.median(r[2] for r in rounds) * 1e3, 3
            ),
            "opt_median_ms": round(
                statistics.median(r[3] for r in rounds) * 1e3, 3
            ),
            "speedup": round(legacy_s / fused_s, 3),
            "speedup_opt": round(legacy_s / opt_s, 3),
            "fused_instr_per_s": round(total_instrs / fused_s),
            "opt_instr_per_s": round(total_instrs / opt_s),
            "fused_normalized": round(normalized, 4),
        }
    speedups = sorted(row["speedup"] for row in rows.values())
    speedups_opt = sorted(row["speedup_opt"] for row in rows.values())
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "interpreter_build": interpreter_build_digest()[:16],
        "size": SIZE,
        "repeats": repeats,
        "noise_policy": (
            "best-of-%d invoke-only timings (medians reported alongside); "
            "throughput normalized by a pure-Python calibration loop "
            "measured adjacent to each workload; gate re-measures once "
            "before failing" % repeats
        ),
        "workloads": rows,
        "median_speedup": speedups[len(speedups) // 2],
        "median_speedup_opt": speedups_opt[len(speedups_opt) // 2],
    }


def print_report(report: dict) -> None:
    print(f"interpreter build {report['interpreter_build']}  "
          f"size={report['size']}  repeats={report['repeats']}")
    header = f"{'workload':12s} {'legacy ms':>10s} {'fused ms':>10s} " \
             f"{'opt ms':>10s} {'fused x':>8s} {'opt x':>8s} {'norm.tput':>10s}"
    print(header)
    for name, row in report["workloads"].items():
        print(
            f"{name:12s} {row['legacy_ms']:10.2f} {row['fused_ms']:10.2f} "
            f"{row['opt_ms']:10.2f} {row['speedup']:7.2f}x "
            f"{row['speedup_opt']:7.2f}x {row['fused_normalized']:10.4f}"
        )
    print(f"median speedup: fused {report['median_speedup']:.2f}x, "
          f"opt {report['median_speedup_opt']:.2f}x")


def _per_workload(report: dict, key: str) -> str:
    ratios = sorted(
        (row[key], name) for name, row in report["workloads"].items()
    )
    return ", ".join(f"{name} {ratio:.2f}x" for ratio, name in ratios)


def check(report: dict, threshold: float, min_speedup: float,
          min_speedup_opt: float) -> list:
    """Gate failures (empty list = pass) for one measured report.

    Each failure message names the violating tier, the measured ratio,
    and the per-workload breakdown so CI logs are diagnosable alone.
    """
    failures = []
    gates = [
        ("fused", "median_speedup", "speedup", min_speedup),
        ("opt", "median_speedup_opt", "speedup_opt", min_speedup_opt),
    ]
    for tier, median_key, row_key, floor_ratio in gates:
        measured = report[median_key]
        if measured < floor_ratio:
            failures.append(
                f"tier {tier}: median {tier}/legacy speedup {measured:.2f}x "
                f"is below the {floor_ratio:.1f}x floor "
                f"(per workload: {_per_workload(report, row_key)})"
            )
    if not BASELINE_PATH.exists():
        failures.append(f"missing baseline {BASELINE_PATH.name}")
        return failures
    baseline = json.loads(BASELINE_PATH.read_text())
    for tier, median_key, row_key, _ in gates:
        base = baseline.get(median_key)
        if base is None:
            failures.append(
                f"tier {tier}: baseline {BASELINE_PATH.name} has no "
                f"{median_key}; regenerate it with --update-baseline"
            )
            continue
        measured = report[median_key]
        if measured < base * (1.0 - threshold):
            drop = 1.0 - measured / base
            failures.append(
                f"tier {tier}: median speedup {measured:.2f}x is {drop:.0%} "
                f"below the baseline {base:.2f}x (threshold {threshold:.0%}; "
                f"per workload: {_per_workload(report, row_key)})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=f"write the measured report to {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on regression vs the committed baseline",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed normalized-throughput regression (default 0.15)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required median fused/legacy speedup (default 3.0)",
    )
    parser.add_argument(
        "--min-speedup-opt", type=float, default=10.0,
        help="required median opt/legacy speedup (default 10.0)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.repeats)
    print_report(report)

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH.name}")
        return 0

    if args.check:
        failures = check(
            report, args.threshold, args.min_speedup, args.min_speedup_opt
        )
        if failures:
            # Noise policy: one re-measure absorbs transient CI spikes.
            print("gate failed, re-measuring once to rule out noise:")
            for failure in failures:
                print(f"  - {failure}")
            report = run_benchmark(args.repeats)
            print_report(report)
            failures = check(
                report, args.threshold, args.min_speedup, args.min_speedup_opt
            )
        if failures:
            print("PERF GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
