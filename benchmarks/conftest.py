"""Shared fixtures for the benchmark harness.

Each ``test_figN.py`` regenerates the corresponding paper figure's
rows/series (on reduced workload sets so a full ``pytest benchmarks/
--benchmark-only`` run finishes in minutes) and asserts the paper's
qualitative claims about them.  ``test_substrates.py`` measures the
throughput of the underlying systems themselves.
"""

import pytest

from repro.core.profiles import profile_for

#: Workload sets used by the figure benches: small but including the
#: short-running kernels that drive the contention results.
BENCH_PBC = ["gemm", "trisolv", "jacobi-2d"]
BENCH_SPEC = ["519.lbm"]


@pytest.fixture(scope="session", autouse=True)
def warm_profiles():
    """Compute functional profiles once so benches time the harness,
    not the (cached) profiling interpreter."""
    for name in BENCH_PBC + BENCH_SPEC:
        profile_for(name, "mini")


@pytest.fixture()
def bench_sets(monkeypatch):
    """Patch the experiments onto the reduced workload sets."""
    from repro.core.experiments import fig1, fig2, fig3, fig4, fig5, fig6, replication

    def patched(suite, quick):
        return BENCH_PBC if suite == "polybench" else BENCH_SPEC

    for module in (fig1, fig2, fig3, fig4, fig5, fig6, replication):
        monkeypatch.setattr(module, "suite_names", patched)
