"""Micro-benchmarks of the substrates themselves.

These time the building blocks (interpreter dispatch, binary codec,
validator, compiler pipeline, discrete-event engine, kernel model) —
useful for tracking the reproduction's own performance over time.
"""

import pytest

from repro.compiler.pipeline import ALL_PASSES, CompilerConfig, compile_module
from repro.core.harness import run_benchmark
from repro.core.profiles import profile_for
from repro.isa import isa_named
from repro.runtime import Interpreter, strategy_named
from repro.sim import Delay, Engine
from repro.wasm import decode_module, encode_module, validate_module


@pytest.fixture(scope="module")
def gemm_module():
    module, _ = profile_for("gemm", "mini")
    return module


class TestInterpreter:
    def test_interpreter_throughput(self, benchmark, gemm_module):
        """Wasm ops per second of the closure-threaded interpreter."""
        def run():
            interp = Interpreter(
                gemm_module, collect_profile=False, track_pages=False,
                validate=False,
            )
            interp.invoke("bench")

        benchmark(run)

    def test_profiling_overhead(self, benchmark, gemm_module):
        """Same run with per-pc counting and page tracking enabled."""
        def run():
            interp = Interpreter(gemm_module, validate=False)
            interp.invoke("bench")

        benchmark(run)


class TestBinaryFormat:
    def test_encode(self, benchmark, gemm_module):
        benchmark(encode_module, gemm_module)

    def test_decode(self, benchmark, gemm_module):
        binary = encode_module(gemm_module)
        benchmark(decode_module, binary)

    def test_validate(self, benchmark, gemm_module):
        benchmark(validate_module, gemm_module)


class TestCompiler:
    def test_full_pipeline(self, benchmark, gemm_module):
        config = CompilerConfig(
            name="bench", passes=frozenset(ALL_PASSES),
            regalloc_quality=1.0, addressing_fusion=True,
        )
        benchmark(
            compile_module, gemm_module, isa_named("x86_64"), config,
            strategy_named("trap"),
        )


class TestSimulation:
    def test_event_engine_throughput(self, benchmark):
        """Events per second through the DES core."""
        def run():
            engine = Engine()

            def ticker():
                for _ in range(10_000):
                    yield Delay(1e-6)

            engine.process(ticker())
            engine.run()

        benchmark(run)

    def test_harness_16_thread_run(self, benchmark):
        """A full contended 16-worker system simulation."""
        benchmark.pedantic(
            lambda: run_benchmark(
                "trisolv", "wavm", "mprotect", "x86_64",
                threads=16, size="mini", iterations=3,
            ),
            rounds=2, iterations=1,
        )
